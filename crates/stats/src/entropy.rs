//! Shannon entropy and mutual-information accumulators.
//!
//! The characterization layer asks, per static branch, "how random is
//! this branch?" and "how much of that randomness does a given context
//! (outcome history, predicate state) explain?". Both questions reduce
//! to empirical entropies over observed counts:
//!
//! * [`entropy_bits`] — the marginal Shannon entropy of a discrete
//!   distribution given as raw counts;
//! * [`JointDistribution`] — a streaming `(context, binary outcome)`
//!   joint-count table exposing the outcome entropy `H(Y)`, the
//!   conditional entropy `H(Y | X)`, and the mutual information
//!   `I(X; Y) = H(Y) − H(Y | X)`.
//!
//! All quantities are in bits. Degenerate inputs are well-defined and
//! never NaN: an empty distribution (or one with a single non-zero
//! outcome) has entropy `0.0`, and mutual information is clamped to
//! `>= 0.0` so floating-point rounding can never report a (physically
//! impossible) negative information gain.

use std::collections::BTreeMap;

/// The Shannon entropy, in bits, of the empirical distribution given by
/// `counts` (one entry per outcome; zero entries are ignored).
///
/// Empty and all-zero inputs return `0.0` — a distribution with no
/// observations carries no uncertainty worth reporting, and callers
/// feeding per-branch counts must not have to special-case branches
/// that never executed.
///
/// # Examples
///
/// ```
/// use predbranch_stats::entropy_bits;
///
/// assert_eq!(entropy_bits(&[]), 0.0);          // no observations
/// assert_eq!(entropy_bits(&[7]), 0.0);         // a certainty
/// assert_eq!(entropy_bits(&[50, 50]), 1.0);    // a fair coin
/// assert!(entropy_bits(&[95, 5]) < 0.3);       // a biased coin
/// ```
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// A streaming joint-count table over `(context, binary outcome)`
/// pairs.
///
/// Contexts are opaque `u64` keys (packed history bits, predicate-state
/// codes, ...); outcomes are branch directions. Counts are stored in a
/// `BTreeMap` so every derived quantity — and any iteration a renderer
/// performs — is deterministic regardless of insertion order.
///
/// # Examples
///
/// ```
/// use predbranch_stats::JointDistribution;
///
/// let mut j = JointDistribution::new();
/// for i in 0..100u64 {
///     // outcome strictly alternates: fully determined by the
///     // previous outcome used as context
///     j.record(i % 2, i % 2 == 0);
/// }
/// assert_eq!(j.outcome_entropy(), 1.0);       // marginally a fair coin
/// assert_eq!(j.conditional_entropy(), 0.0);   // but context explains it
/// assert_eq!(j.mutual_information(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JointDistribution {
    cells: BTreeMap<u64, [u64; 2]>,
    totals: [u64; 2],
}

impl JointDistribution {
    /// Creates an empty joint distribution.
    pub fn new() -> Self {
        JointDistribution::default()
    }

    /// Records one `(context, outcome)` observation.
    pub fn record(&mut self, context: u64, outcome: bool) {
        let cell = self.cells.entry(context).or_default();
        cell[usize::from(outcome)] += 1;
        self.totals[usize::from(outcome)] += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.totals[0] + self.totals[1]
    }

    /// Number of distinct contexts observed.
    pub fn contexts(&self) -> usize {
        self.cells.len()
    }

    /// The marginal outcome entropy `H(Y)` in bits.
    pub fn outcome_entropy(&self) -> f64 {
        entropy_bits(&self.totals)
    }

    /// The conditional outcome entropy `H(Y | X)` in bits: the
    /// count-weighted average of the per-context outcome entropies.
    /// `0.0` when empty.
    pub fn conditional_entropy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let total = total as f64;
        let mut h = 0.0;
        for counts in self.cells.values() {
            let n = counts[0] + counts[1];
            h += (n as f64 / total) * entropy_bits(counts);
        }
        h
    }

    /// The mutual information `I(X; Y) = H(Y) − H(Y | X)` in bits,
    /// clamped at `0.0` so floating-point rounding never reports a
    /// negative gain. `0.0` when empty or when context and outcome are
    /// empirically independent.
    pub fn mutual_information(&self) -> f64 {
        (self.outcome_entropy() - self.conditional_entropy()).max(0.0)
    }

    /// Whether the table holds enough observations to trust its
    /// empirical conditional entropy: at least `per_context`
    /// observations per *distinct observed context*, on average.
    ///
    /// Empirical conditional entropy is biased towards zero when
    /// contexts are many and samples per context few (each sparsely
    /// seen context looks deterministic); callers use this rule to
    /// discard depths a trace cannot support. An empty table is never
    /// supported.
    pub fn supported(&self, per_context: u64) -> bool {
        !self.cells.is_empty()
            && self.total() >= per_context.saturating_mul(self.cells.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_degenerate_distributions_is_zero() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0, 0, 0]), 0.0);
        assert_eq!(entropy_bits(&[42]), 0.0);
        assert_eq!(entropy_bits(&[42, 0, 0]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_distributions() {
        assert_eq!(entropy_bits(&[1, 1]), 1.0);
        assert_eq!(entropy_bits(&[10, 10, 10, 10]), 2.0);
    }

    #[test]
    fn entropy_is_scale_invariant_and_bounded() {
        let a = entropy_bits(&[3, 7]);
        let b = entropy_bits(&[300, 700]);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn empty_joint_is_fully_degenerate() {
        let j = JointDistribution::new();
        assert_eq!(j.total(), 0);
        assert_eq!(j.contexts(), 0);
        assert_eq!(j.outcome_entropy(), 0.0);
        assert_eq!(j.conditional_entropy(), 0.0);
        assert_eq!(j.mutual_information(), 0.0);
        assert!(!j.supported(1));
    }

    #[test]
    fn single_outcome_joint_has_zero_entropy() {
        let mut j = JointDistribution::new();
        for ctx in 0..4 {
            j.record(ctx, true);
        }
        assert_eq!(j.outcome_entropy(), 0.0);
        assert_eq!(j.conditional_entropy(), 0.0);
        assert_eq!(j.mutual_information(), 0.0);
    }

    #[test]
    fn independent_context_carries_no_information() {
        let mut j = JointDistribution::new();
        for ctx in 0..8 {
            for outcome in [false, true] {
                for _ in 0..5 {
                    j.record(ctx, outcome);
                }
            }
        }
        assert_eq!(j.outcome_entropy(), 1.0);
        assert!((j.conditional_entropy() - 1.0).abs() < 1e-12);
        assert_eq!(j.mutual_information(), 0.0);
    }

    #[test]
    fn deterministic_context_explains_everything() {
        let mut j = JointDistribution::new();
        for i in 0..100u64 {
            j.record(i % 2, i % 2 == 1);
        }
        assert_eq!(j.outcome_entropy(), 1.0);
        assert_eq!(j.conditional_entropy(), 0.0);
        assert_eq!(j.mutual_information(), 1.0);
    }

    #[test]
    fn partial_correlation_falls_in_between() {
        let mut j = JointDistribution::new();
        // context 0: 90/10 taken; context 1: 10/90 taken
        for _ in 0..90 {
            j.record(0, true);
            j.record(1, false);
        }
        for _ in 0..10 {
            j.record(0, false);
            j.record(1, true);
        }
        let mi = j.mutual_information();
        assert!(mi > 0.4 && mi < 1.0, "{mi}");
    }

    #[test]
    fn support_rule_counts_observed_contexts() {
        let mut j = JointDistribution::new();
        for i in 0..32u64 {
            j.record(i % 4, true); // 4 contexts × 8 samples
        }
        assert!(j.supported(8));
        assert!(!j.supported(9));
    }

    #[test]
    fn totals_and_contexts_track_records() {
        let mut j = JointDistribution::new();
        j.record(7, true);
        j.record(7, false);
        j.record(9, true);
        assert_eq!(j.total(), 3);
        assert_eq!(j.contexts(), 2);
    }
}

//! Bucketed histograms for distance and size distributions.

use std::fmt;

/// A histogram over `u64` samples.
///
/// Two bucketing schemes are provided:
///
/// * [`Histogram::linear`] — fixed-width buckets, e.g. predicate-definition
///   to branch distances in instructions;
/// * [`Histogram::log2`] — power-of-two buckets, e.g. region sizes.
///
/// Samples past the last bucket accumulate in an overflow bucket so the
/// total count is always exact.
///
/// # Examples
///
/// ```
/// use predbranch_stats::Histogram;
///
/// let mut h = Histogram::linear(4, 10); // buckets [0,10) [10,20) [20,30) [30,40) + overflow
/// for d in [3, 12, 14, 35, 99] {
///     h.record(d);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    scheme: Scheme,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheme {
    Linear { width: u64 },
    Log2,
}

impl Histogram {
    /// Creates a histogram with `buckets` fixed-width buckets of `width`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `width` is zero.
    pub fn linear(buckets: usize, width: u64) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(width > 0, "bucket width must be positive");
        Histogram {
            scheme: Scheme::Linear { width },
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Creates a histogram with `buckets` power-of-two buckets:
    /// `[0,1), [1,2), [2,4), [4,8), ...`.
    ///
    /// A sample of `u64::MAX` belongs to bucket index 64 (the
    /// `[2^63, 2^64)` bucket): with 65 or more buckets it is counted
    /// there, otherwise it lands in the overflow bucket. See
    /// [`Histogram::bucket_range`] for how that top bucket's
    /// unrepresentable upper edge is reported.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn log2(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            scheme: Scheme::Log2,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_index(&self, sample: u64) -> Option<usize> {
        // Index math stays in u64 until the range check: casting first
        // would let a huge `sample / width` wrap on 32-bit targets and
        // land in a bogus small bucket. The largest possible index is
        // 64 (log₂ scheme, `sample == u64::MAX`), which a sufficiently
        // tall histogram stores like any other bucket.
        let idx = match self.scheme {
            Scheme::Linear { width } => sample / width,
            Scheme::Log2 => {
                if sample == 0 {
                    0
                } else {
                    u64::from(64 - sample.leading_zeros())
                }
            }
        };
        if idx < self.buckets.len() as u64 {
            Some(idx as usize)
        } else {
            None
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        match self.bucket_index(sample) {
            Some(idx) => self.buckets[idx] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += u128::from(sample);
        self.max = self.max.max(sample);
    }

    /// Total number of recorded samples (including overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of buckets (excluding the overflow bucket).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Samples that fell past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded samples, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample, or `0` if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The inclusive-exclusive `[lo, hi)` range of bucket `idx`.
    ///
    /// Edges saturate at `u64::MAX` instead of overflowing: the log₂
    /// bucket at index 64 (which is where `u64::MAX` lands — its
    /// nominal upper edge 2⁶⁴ is unrepresentable) reports
    /// `[2^63, u64::MAX)`, and linear buckets whose nominal edges
    /// exceed `u64::MAX` clamp the same way. A saturated bucket is
    /// therefore the one place the `[lo, hi)` convention bends: it also
    /// holds samples equal to `u64::MAX` itself.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_range(&self, idx: usize) -> (u64, u64) {
        assert!(idx < self.buckets.len(), "bucket index out of range");
        // 2^e, saturating at u64::MAX for e >= 64 — the log₂ scheme's
        // top buckets have unrepresentable nominal edges.
        let pow2 = |e: usize| -> u64 {
            if e >= 64 {
                u64::MAX
            } else {
                1u64 << e
            }
        };
        match self.scheme {
            Scheme::Linear { width } => (
                (idx as u64).saturating_mul(width),
                (idx as u64).saturating_add(1).saturating_mul(width),
            ),
            Scheme::Log2 => {
                if idx == 0 {
                    (0, 1)
                } else {
                    (pow2(idx - 1), pow2(idx))
                }
            }
        }
    }

    /// The fraction of samples at or below the upper edge of bucket `idx`
    /// (treating overflow as above every bucket).
    pub fn cumulative_fraction(&self, idx: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let below: u64 = self.buckets.iter().take(idx + 1).sum();
        below as f64 / self.count as f64
    }

    /// The (exclusive) upper edge of the first bucket whose cumulative
    /// fraction reaches `p` (`0.0..=1.0`) — an upper bound on the
    /// p-quantile at bucket resolution. Returns `None` if the histogram
    /// is empty or the quantile falls in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn percentile_upper_bound(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in 0..=1");
        if self.count == 0 {
            return None;
        }
        for idx in 0..self.buckets.len() {
            if self.cumulative_fraction(idx) >= p {
                return Some(self.bucket_range(idx).1);
            }
        }
        None
    }

    /// Merges another histogram with the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucketing schemes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.scheme, other.scheme,
            "cannot merge histograms with different schemes"
        );
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different bucket counts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for idx in 0..self.buckets.len() {
            let (lo, hi) = self.bucket_range(idx);
            let n = self.buckets[idx];
            let frac = if self.count == 0 {
                0.0
            } else {
                n as f64 / self.count as f64 * 100.0
            };
            writeln!(f, "[{lo:>6},{hi:>6})  {n:>10}  {frac:6.2}%")?;
        }
        if self.overflow > 0 {
            writeln!(f, "[overflow)     {:>10}", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_place_samples() {
        let mut h = Histogram::linear(3, 5);
        h.record(0);
        h.record(4);
        h.record(5);
        h.record(14);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn linear_overflow_catches_large_samples() {
        let mut h = Histogram::linear(2, 10);
        h.record(20);
        h.record(1_000_000);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn log2_bucket_ranges() {
        let h = Histogram::log2(5);
        assert_eq!(h.bucket_range(0), (0, 1));
        assert_eq!(h.bucket_range(1), (1, 2));
        assert_eq!(h.bucket_range(2), (2, 4));
        assert_eq!(h.bucket_range(4), (8, 16));
    }

    #[test]
    fn log2_buckets_place_samples() {
        let mut h = Histogram::log2(4);
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        h.record(7); // bucket 3
        h.record(8); // overflow
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn u64_max_lands_in_log2_bucket_64() {
        // tall enough histogram: u64::MAX is a regular sample, not overflow
        let mut h = Histogram::log2(65);
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.bucket_count(64), 2);
        assert_eq!(h.overflow(), 0);
        // the top bucket's nominal upper edge 2^64 saturates
        assert_eq!(h.bucket_range(64), (1u64 << 63, u64::MAX));
        assert_eq!(h.max(), u64::MAX);
        // short histogram: same sample overflows instead of panicking
        let mut short = Histogram::log2(4);
        short.record(u64::MAX);
        assert_eq!(short.overflow(), 1);
    }

    #[test]
    fn linear_bucket_ranges_saturate_instead_of_overflowing() {
        let h = Histogram::linear(4, u64::MAX / 2);
        assert_eq!(h.bucket_range(0), (0, u64::MAX / 2));
        // nominal edges 2·(u64::MAX/2) and beyond clamp to u64::MAX
        assert_eq!(h.bucket_range(2).1, u64::MAX);
        assert_eq!(h.bucket_range(3), (u64::MAX, u64::MAX));
        let mut h = Histogram::linear(2, u64::MAX);
        h.record(u64::MAX); // u64::MAX / u64::MAX == 1: second bucket
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn mean_and_max_track_samples() {
        let mut h = Histogram::linear(4, 100);
        for s in [10, 20, 30] {
            h.record(s);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::log2(3);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.cumulative_fraction(2), 0.0);
    }

    #[test]
    fn cumulative_fraction_counts_buckets_up_to_index() {
        let mut h = Histogram::linear(4, 1);
        for s in [0, 1, 2, 3] {
            h.record(s);
        }
        assert_eq!(h.cumulative_fraction(0), 0.25);
        assert_eq!(h.cumulative_fraction(3), 1.0);
    }

    #[test]
    fn percentile_upper_bound_brackets_quantiles() {
        let mut h = Histogram::linear(10, 10);
        for s in 0..100u64 {
            h.record(s);
        }
        assert_eq!(h.percentile_upper_bound(0.5), Some(50));
        assert_eq!(h.percentile_upper_bound(0.05), Some(10));
        assert_eq!(h.percentile_upper_bound(1.0), Some(100));
        assert_eq!(Histogram::linear(2, 1).percentile_upper_bound(0.5), None);
        let mut over = Histogram::linear(1, 1);
        over.record(100);
        assert_eq!(over.percentile_upper_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = Histogram::linear(2, 1).percentile_upper_bound(1.5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::linear(2, 10);
        let mut b = Histogram::linear(2, 10);
        a.record(1);
        b.record(1);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_count(0), 2);
        assert_eq!(a.bucket_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "different schemes")]
    fn merge_rejects_mismatched_schemes() {
        let mut a = Histogram::linear(2, 10);
        let b = Histogram::log2(2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::log2(0);
    }

    #[test]
    fn display_is_nonempty() {
        let mut h = Histogram::linear(1, 1);
        h.record(0);
        assert!(!h.to_string().is_empty());
    }
}

//! Statistics utilities shared by the `predbranch` simulator and experiment
//! harness.
//!
//! This crate provides the small, dependency-free building blocks every
//! experiment in the study needs:
//!
//! * [`Counter`] / [`Ratio`] — saturating event counters and derived rates,
//! * [`Histogram`] — fixed-bucket and log₂ histograms for distance and
//!   size distributions,
//! * [`Summary`] — running mean / variance / min / max accumulators,
//! * [`entropy_bits`] / [`JointDistribution`] — Shannon entropy and
//!   mutual-information accumulators for predictability characterization,
//! * [`geometric_mean`] and friends — suite-level aggregation used when a
//!   figure reports one bar per benchmark plus an average,
//! * [`Table`] and [`Series`] — plain-text renderers that print experiment
//!   output in the same rows/series layout the paper's tables and figures
//!   use.
//!
//! # Examples
//!
//! ```
//! use predbranch_stats::{Counter, Ratio};
//!
//! let mut branches = Counter::new();
//! let mut mispredicts = Counter::new();
//! for outcome in [true, false, true, true] {
//!     branches.add(1);
//!     if !outcome {
//!         mispredicts.add(1);
//!     }
//! }
//! let rate = Ratio::of(mispredicts.get(), branches.get());
//! assert_eq!(rate.percent(), 25.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counter;
mod entropy;
mod histogram;
mod series;
mod summary;
mod table;

pub use counter::{Counter, Ratio};
pub use entropy::{entropy_bits, JointDistribution};
pub use histogram::Histogram;
pub use series::Series;
pub use summary::{geometric_mean, harmonic_mean, mean, Summary};
pub use table::{Align, Cell, Table};

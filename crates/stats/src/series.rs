//! Labelled numeric series — the textual analogue of a line/bar figure.

use std::fmt;

/// A named family of `(x, y)` points, rendered as aligned text columns.
///
/// A figure with several lines becomes one [`Series`] per line sharing the
/// same x-labels; the experiment harness prints them side by side so a
/// figure can be "regenerated" as text and compared against the paper's
/// plotted curves.
///
/// # Examples
///
/// ```
/// use predbranch_stats::Series;
///
/// let mut s = Series::new("F5: misp vs size", "size KB");
/// s.line("gshare");
/// s.line("gshare+PGU");
/// s.point("1", &[8.1, 7.0]);
/// s.point("2", &[7.5, 6.2]);
/// assert_eq!(s.lines().len(), 2);
/// assert!(s.to_string().contains("gshare+PGU"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    title: String,
    x_label: String,
    lines: Vec<String>,
    points: Vec<(String, Vec<f64>)>,
}

impl Series {
    /// Creates an empty series collection with a title and x-axis label.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            lines: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Declares a line (one curve in the figure). Lines must be declared
    /// before points are added.
    ///
    /// # Panics
    ///
    /// Panics if points have already been added.
    pub fn line(&mut self, name: impl Into<String>) {
        assert!(
            self.points.is_empty(),
            "declare all lines before adding points"
        );
        self.lines.push(name.into());
    }

    /// Adds one x position with a y value per declared line.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len()` does not match the number of declared lines.
    pub fn point(&mut self, x: impl Into<String>, ys: &[f64]) {
        assert_eq!(
            ys.len(),
            self.lines.len(),
            "one y value required per declared line"
        );
        self.points.push((x.into(), ys.to_vec()));
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Declared line names.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The recorded `(x, ys)` points.
    pub fn points(&self) -> &[(String, Vec<f64>)] {
        &self.points
    }

    /// The y values of line `idx` across all points, if the line exists.
    pub fn line_values(&self, idx: usize) -> Option<Vec<f64>> {
        if idx >= self.lines.len() {
            return None;
        }
        Some(self.points.iter().map(|(_, ys)| ys[idx]).collect())
    }

    /// Renders the series as horizontal text bar charts, one block per
    /// line, scaled to the series' global maximum — a terminal-friendly
    /// sketch of the figure the numbers would plot.
    ///
    /// # Examples
    ///
    /// ```
    /// use predbranch_stats::Series;
    ///
    /// let mut s = Series::new("demo", "x");
    /// s.line("a");
    /// s.point("p", &[2.0]);
    /// s.point("q", &[4.0]);
    /// let bars = s.to_bars(10);
    /// assert!(bars.contains("##########"));
    /// ```
    pub fn to_bars(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self
            .points
            .iter()
            .flat_map(|(_, ys)| ys.iter().copied())
            .fold(0.0_f64, f64::max);
        let xw = self
            .points
            .iter()
            .map(|(x, _)| x.len())
            .max()
            .unwrap_or(1)
            .max(self.x_label.len());
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (idx, line) in self.lines.iter().enumerate() {
            let _ = writeln!(out, "[{line}]");
            for (x, ys) in &self.points {
                let y = ys[idx];
                let filled = if max > 0.0 {
                    ((y / max) * width as f64).round() as usize
                } else {
                    0
                };
                let _ = writeln!(
                    out,
                    "  {x:<xw$}  {:<width$}  {y:.4}",
                    "#".repeat(filled.min(width))
                );
            }
        }
        out
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let xw = self
            .points
            .iter()
            .map(|(x, _)| x.len())
            .chain(std::iter::once(self.x_label.len()))
            .max()
            .unwrap_or(4);
        let lw: Vec<usize> = self.lines.iter().map(|l| l.len().max(8)).collect();
        write!(f, "{:<xw$}", self.x_label)?;
        for (line, w) in self.lines.iter().zip(&lw) {
            write!(f, "  {line:>w$}")?;
        }
        writeln!(f)?;
        let rule = xw + lw.iter().map(|w| w + 2).sum::<usize>();
        writeln!(f, "{}", "-".repeat(rule))?;
        for (x, ys) in &self.points {
            write!(f, "{x:<xw$}")?;
            for (y, w) in ys.iter().zip(&lw) {
                write!(f, "  {y:>w$.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("fig", "x");
        s.line("base");
        s.line("new");
        s.point("a", &[1.0, 2.0]);
        s.point("b", &[3.0, 4.0]);
        s
    }

    #[test]
    fn lines_and_points_recorded() {
        let s = sample();
        assert_eq!(s.lines(), &["base".to_string(), "new".to_string()]);
        assert_eq!(s.points().len(), 2);
    }

    #[test]
    fn line_values_extracts_column() {
        let s = sample();
        assert_eq!(s.line_values(0).unwrap(), vec![1.0, 3.0]);
        assert_eq!(s.line_values(1).unwrap(), vec![2.0, 4.0]);
        assert!(s.line_values(2).is_none());
    }

    #[test]
    #[should_panic(expected = "one y value")]
    fn point_arity_checked() {
        let mut s = sample();
        s.point("c", &[1.0]);
    }

    #[test]
    #[should_panic(expected = "before adding points")]
    fn late_line_declaration_rejected() {
        let mut s = sample();
        s.line("too late");
    }

    #[test]
    fn display_contains_all_labels() {
        let text = sample().to_string();
        for needle in ["fig", "base", "new", "a", "b", "1.0000", "4.0000"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn bars_scale_to_global_max() {
        let s = sample();
        let bars = s.to_bars(8);
        // the max value (4.0) fills the width; 1.0 fills a quarter
        assert!(bars.contains("########"), "{bars}");
        assert!(bars.contains("##  "), "{bars}");
        assert!(bars.contains("[base]") && bars.contains("[new]"));
    }

    #[test]
    fn bars_handle_all_zero_series() {
        let mut s = Series::new("z", "x");
        s.line("only");
        s.point("a", &[0.0]);
        let bars = s.to_bars(10);
        assert!(!bars.contains('#'));
    }

    #[test]
    fn empty_series_displays_header_only() {
        let s = Series::new("empty", "x");
        let text = s.to_string();
        assert!(text.contains("empty"));
    }
}

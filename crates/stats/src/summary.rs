//! Running summaries and suite-level aggregation.

use std::fmt;

/// A running accumulator for mean, variance, min, and max of `f64` samples.
///
/// Uses Welford's online algorithm so long experiment runs stay numerically
/// stable.
///
/// # Examples
///
/// ```
/// use predbranch_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = sample - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (dividing by `n`), or `0.0` if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by `n - 1`), or `0.0` with fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, or `0.0` if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or `0.0` if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (`1.96 · s/√n`), or `0.0` with fewer than two samples.
    pub fn confidence95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * (self.sample_variance() / self.count as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.4} sd={:.4} min={:.4} max={:.4} n={}",
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max(),
            self.count
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Arithmetic mean of `samples`, or `0.0` if empty.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Geometric mean of `samples`, or `0.0` if empty.
///
/// The conventional aggregate for per-benchmark speedups. Non-positive
/// samples are clamped to a tiny positive value so a single degenerate
/// benchmark cannot produce `NaN`.
pub fn geometric_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = samples.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

/// Harmonic mean of `samples`, or `0.0` if empty.
///
/// The conventional aggregate for per-benchmark rates (e.g. IPC).
pub fn harmonic_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let inv_sum: f64 = samples.iter().map(|&x| 1.0 / x.max(1e-12)).sum();
    samples.len() as f64 / inv_sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample_statistics() {
        let mut s = Summary::new();
        s.record(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_textbook_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_extremes() {
        let s: Summary = [3.0, -1.0, 10.0].into_iter().collect();
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let small: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let large: Summary = std::iter::repeat_n([1.0, 2.0, 3.0], 100)
            .flatten()
            .collect();
        assert!(large.confidence95() < small.confidence95());
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // a zero sample must not poison the aggregate into NaN
        assert!(geometric_mean(&[0.0, 4.0]).is_finite());
    }

    #[test]
    fn harmonic_mean_of_rates() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn extend_appends_samples() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        let text = s.to_string();
        for key in ["mean=", "sd=", "min=", "max=", "n="] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}

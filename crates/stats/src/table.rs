//! Plain-text table rendering for experiment output.

use std::fmt;

/// Column alignment in a rendered [`Table`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// One table cell: a pre-formatted string.
///
/// Cells are kept as strings so callers control numeric formatting; the
/// convenience constructors cover the formats the experiment tables use.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell(String);

impl Cell {
    /// Creates a cell from any displayable value.
    pub fn new(value: impl fmt::Display) -> Self {
        Cell(value.to_string())
    }

    /// A float rendered with `digits` decimal places.
    pub fn float(value: f64, digits: usize) -> Self {
        Cell(format!("{value:.digits$}"))
    }

    /// A percentage rendered with two decimal places and a `%` suffix.
    pub fn percent(value: f64) -> Self {
        Cell(format!("{value:.2}%"))
    }

    /// An integer with thousands separators (`1_234_567` → `1,234,567`).
    pub fn count(value: u64) -> Self {
        let digits = value.to_string();
        let mut out = String::with_capacity(digits.len() + digits.len() / 3);
        for (i, ch) in digits.chars().enumerate() {
            if i > 0 && (digits.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(ch);
        }
        Cell(out)
    }

    /// The cell's text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<String> for Cell {
    fn from(value: String) -> Self {
        Cell(value)
    }
}

impl From<&str> for Cell {
    fn from(value: &str) -> Self {
        Cell(value.to_string())
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A simple text table: a title, a header row, and data rows.
///
/// Renders with column widths fitted to content, matching the row/column
/// layout the paper's tables use so EXPERIMENTS.md can quote output
/// verbatim.
///
/// # Examples
///
/// ```
/// use predbranch_stats::{Cell, Table};
///
/// let mut t = Table::new("T0: demo", &["bench", "misp%"]);
/// t.row(vec![Cell::new("gzip-like"), Cell::percent(4.2)]);
/// let text = t.to_string();
/// assert!(text.contains("gzip-like"));
/// assert!(text.contains("4.20%"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    ///
    /// The first column defaults to left alignment, the rest to right;
    /// override with [`Table::with_aligns`].
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        let aligns = header
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the per-column alignments.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` does not match the number of columns.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(
            aligns.len(),
            self.header.len(),
            "alignment count must match column count"
        );
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row length must match column count"
        );
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// The cell at (`row`, `col`), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Cell> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.as_str().len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let fmt_cell = |text: &str, width: usize, align: Align| match align {
            Align::Left => format!("{text:<width$}"),
            Align::Right => format!("{text:>width$}"),
        };
        let header: Vec<String> = self
            .header
            .iter()
            .zip(&widths)
            .zip(&self.aligns)
            .map(|((h, &w), &a)| fmt_cell(h, w, a))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .zip(&self.aligns)
                .map(|((c, &w), &a)| fmt_cell(c.as_str(), w, a))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T9: sample", &["bench", "rate"]);
        t.row(vec![Cell::new("a"), Cell::percent(1.0)]);
        t.row(vec![Cell::new("bb"), Cell::percent(22.5)]);
        t
    }

    #[test]
    fn cell_float_formats_digits() {
        assert_eq!(Cell::float(1.23456, 2).as_str(), "1.23");
        assert_eq!(Cell::float(1.0, 0).as_str(), "1");
    }

    #[test]
    fn cell_percent_has_suffix() {
        assert_eq!(Cell::percent(12.345).as_str(), "12.35%");
    }

    #[test]
    fn cell_count_inserts_separators() {
        assert_eq!(Cell::count(0).as_str(), "0");
        assert_eq!(Cell::count(999).as_str(), "999");
        assert_eq!(Cell::count(1_000).as_str(), "1,000");
        assert_eq!(Cell::count(1_234_567).as_str(), "1,234,567");
    }

    #[test]
    fn table_tracks_shape() {
        let t = sample();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.cell(1, 0).unwrap().as_str(), "bb");
        assert!(t.cell(5, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec![Cell::new("only one")]);
    }

    #[test]
    fn render_contains_title_header_and_rows() {
        let text = sample().to_string();
        assert!(text.contains("T9: sample"));
        assert!(text.contains("bench"));
        assert!(text.contains("22.50%"));
    }

    #[test]
    fn render_right_aligns_numbers() {
        let text = sample().to_string();
        // "rate" column width is 6 ("22.50%"), so "1.00%" is padded to width 6.
        assert!(text.contains(" 1.00%"), "got:\n{text}");
    }

    #[test]
    fn with_aligns_overrides() {
        let t = Table::new("t", &["a", "b"]).with_aligns(&[Align::Right, Align::Left]);
        assert_eq!(t.column_count(), 2);
    }

    #[test]
    #[should_panic(expected = "alignment count")]
    fn with_aligns_checks_length() {
        let _ = Table::new("t", &["a", "b"]).with_aligns(&[Align::Left]);
    }
}

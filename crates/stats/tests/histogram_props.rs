//! Property tests pinning `Histogram` bucketing against a reference
//! model computed in `u128` (where no edge can overflow), with the
//! extremes (`0`, `u64::MAX`, widths near `u64::MAX`) injected
//! explicitly — the log₂ index-64 and saturated bucket-edge cases the
//! fixed arithmetic has to get right live here.

use proptest::prelude::*;

use predbranch_stats::Histogram;

#[derive(Clone, Copy, Debug)]
enum Scheme {
    Linear(u64),
    Log2,
}

impl Scheme {
    /// The bucket a sample belongs to, computed in u128 so the model
    /// itself cannot overflow. For log₂ the rule is "the smallest k
    /// with `sample < 2^k`" — written as a search, independently of the
    /// implementation's leading-zeros arithmetic.
    fn reference_index(self, sample: u64) -> u128 {
        match self {
            Scheme::Linear(width) => u128::from(sample) / u128::from(width),
            Scheme::Log2 => (0..=64u128)
                .find(|&k| u128::from(sample) < (1u128 << k))
                .unwrap(),
        }
    }

    /// Nominal `[lo, hi)` edges of bucket `idx`, in u128.
    fn reference_range(self, idx: usize) -> (u128, u128) {
        match self {
            Scheme::Linear(width) => (
                idx as u128 * u128::from(width),
                (idx as u128 + 1) * u128::from(width),
            ),
            Scheme::Log2 => {
                if idx == 0 {
                    (0, 1)
                } else {
                    (1u128 << (idx - 1), 1u128 << idx)
                }
            }
        }
    }

    fn build(self, buckets: usize) -> Histogram {
        match self {
            Scheme::Linear(width) => Histogram::linear(buckets, width),
            Scheme::Log2 => Histogram::log2(buckets),
        }
    }
}

/// Samples biased towards the edges the satellite task names.
fn sample_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        Just(1u64 << 63),
        any::<u64>(),
        0u64..1024,
    ]
}

fn check_against_reference(scheme: Scheme, buckets: usize, samples: &[u64]) {
    let mut h = scheme.build(buckets);
    let mut expected = vec![0u64; buckets];
    let mut expected_overflow = 0u64;
    let mut expected_max = 0u64;
    for &s in samples {
        h.record(s);
        let idx = scheme.reference_index(s);
        if idx < buckets as u128 {
            expected[idx as usize] += 1;
        } else {
            expected_overflow += 1;
        }
        expected_max = expected_max.max(s);
    }
    for (idx, &want) in expected.iter().enumerate() {
        assert_eq!(h.bucket_count(idx), want, "bucket {idx} under {scheme:?}");
    }
    assert_eq!(h.overflow(), expected_overflow);
    assert_eq!(h.count(), samples.len() as u64);
    assert_eq!(h.max(), expected_max);
    // conservation: every sample is in exactly one bucket or overflow
    let total: u64 = (0..buckets).map(|i| h.bucket_count(i)).sum::<u64>() + h.overflow();
    assert_eq!(total, h.count());
    // reported edges are the nominal u128 edges clamped to u64::MAX
    for idx in 0..buckets {
        let (lo, hi) = h.bucket_range(idx);
        let (ref_lo, ref_hi) = scheme.reference_range(idx);
        assert_eq!(u128::from(lo), ref_lo.min(u128::from(u64::MAX)), "lo {idx}");
        assert_eq!(u128::from(hi), ref_hi.min(u128::from(u64::MAX)), "hi {idx}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log2_matches_reference_model(
        buckets in 1usize..70,
        samples in proptest::collection::vec(sample_strategy(), 0..200),
    ) {
        check_against_reference(Scheme::Log2, buckets, &samples);
    }

    #[test]
    fn linear_matches_reference_model(
        buckets in 1usize..40,
        width in prop_oneof![
            1u64..100,
            Just(1u64),
            Just(u64::MAX),
            Just(u64::MAX / 2),
            Just(u64::MAX / 3),
        ],
        samples in proptest::collection::vec(sample_strategy(), 0..200),
    ) {
        check_against_reference(Scheme::Linear(width), buckets, &samples);
    }

    #[test]
    fn cumulative_fraction_is_monotone_and_capped(
        buckets in 1usize..70,
        samples in proptest::collection::vec(sample_strategy(), 1..100),
    ) {
        let mut h = Histogram::log2(buckets);
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0.0;
        for idx in 0..h.buckets() {
            let f = h.cumulative_fraction(idx);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
    }
}

//! Resumable sweep checkpoints.
//!
//! A checkpoint is an append-only JSONL journal: one line per completed
//! cell, `{"k": <key>, "ms": <wall_ms>, "v": <payload>}`. Appends are
//! flushed per line, so a sweep killed at any instant loses at most the
//! line being written; on reopen, a torn trailing line is detected and
//! ignored (the cell simply re-runs). Keys are expected to be
//! content-addressed by the caller — a resumed sweep trusts an entry
//! *only* because its key encodes everything that determines the
//! result.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::Json;

/// An open checkpoint journal: previously completed cells loaded into
/// memory, plus an append handle for newly completed ones.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    completed: HashMap<String, Json>,
    writer: Mutex<File>,
}

impl Checkpoint {
    /// Opens (creating if absent) the journal at `path`, loading every
    /// intact entry. A corrupt or torn tail — a journal whose writer was
    /// killed mid-append — is *truncated away*, not fatal: the affected
    /// cell simply re-runs, and subsequent appends start on a fresh
    /// line instead of gluing onto the torn one.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut completed = HashMap::new();
        let mut valid_end = 0u64;
        match std::fs::read_to_string(&path) {
            // journals hold one line per *cell* (not per event), so
            // reading whole is cheap even for huge sweeps
            Ok(text) => {
                let mut offset = 0usize;
                for segment in text.split_inclusive('\n') {
                    let terminated = segment.ends_with('\n');
                    let line = segment.trim_end_matches(['\n', '\r']);
                    let entry = if line.trim().is_empty() {
                        None
                    } else {
                        match Json::parse(line) {
                            Ok(entry) => Some(entry),
                            Err(_) => break, // torn tail: drop it and stop
                        }
                    };
                    if !terminated {
                        // an unterminated final line may have lost its
                        // newline to a kill; conservatively re-run it
                        break;
                    }
                    if let Some(entry) = entry {
                        if let (Some(key), Some(value)) =
                            (entry.get("k").and_then(Json::as_str), entry.get("v"))
                        {
                            completed.insert(key.to_string(), value.clone());
                        }
                    }
                    offset += segment.len();
                    valid_end = offset as u64;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let writer = OpenOptions::new().create(true).append(true).open(&path)?;
        writer.set_len(valid_end)?;
        Ok(Checkpoint {
            path,
            completed,
            writer: Mutex::new(writer),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The payload previously recorded for `key`, if the cell already
    /// completed in an earlier (or the current) run.
    pub fn lookup(&self, key: &str) -> Option<&Json> {
        self.completed.get(key)
    }

    /// Entries loaded at open time.
    pub fn loaded(&self) -> usize {
        self.completed.len()
    }

    /// Appends a keyless provenance note (e.g. which shard of a
    /// partitioned sweep owns this journal). The loader skips lines
    /// without a `"k"` field, so notes never masquerade as completed
    /// cells, and journal merging drops them from the canonical output.
    pub fn note(&self, payload: &Json) -> io::Result<()> {
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(writer, "{}", payload.render())?;
        writer.flush()
    }

    /// Appends a completed cell and flushes it to disk before
    /// returning, so the entry survives a kill arriving right after.
    pub fn record(&self, key: &str, wall_ms: u64, payload: &Json) -> io::Result<()> {
        let line = Json::obj()
            .field("k", key)
            .field("ms", wall_ms)
            .field("v", payload.clone())
            .render();
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(writer, "{line}")?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pb-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn record_then_reopen_restores_entries() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path).unwrap();
        assert_eq!(ckpt.loaded(), 0);
        ckpt.record("cell-a", 5, &Json::obj().field("x", 1u64))
            .unwrap();
        ckpt.record("cell-b", 9, &Json::from("text")).unwrap();
        drop(ckpt);

        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(reopened.loaded(), 2);
        assert_eq!(
            reopened
                .lookup("cell-a")
                .unwrap()
                .get("x")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(reopened.lookup("cell-b").unwrap().as_str(), Some("text"));
        assert!(reopened.lookup("cell-c").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn notes_survive_but_never_load_as_cells() {
        let path = tmp("notes");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path).unwrap();
        ckpt.note(&Json::obj().field("note", "shard").field("index", 1u64))
            .unwrap();
        ckpt.record("cell", 3, &Json::from(7u64)).unwrap();
        drop(ckpt);
        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(reopened.loaded(), 1);
        assert!(reopened.lookup("cell").is_some());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"note\":\"shard\""), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path).unwrap();
        ckpt.record("good", 1, &Json::from(1u64)).unwrap();
        ckpt.record("casualty", 1, &Json::from(2u64)).unwrap();
        drop(ckpt);
        // simulate a kill mid-append: truncate the last line in half
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();

        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(reopened.loaded(), 1);
        assert!(reopened.lookup("good").is_some());
        assert!(reopened.lookup("casualty").is_none());
        // and the journal still accepts appends afterwards
        reopened.record("new", 1, &Json::Null).unwrap();
        drop(reopened);
        let again = Checkpoint::open(&path).unwrap();
        assert!(again.lookup("new").is_some());
        let _ = std::fs::remove_file(&path);
    }
}

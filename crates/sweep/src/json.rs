//! A deliberately minimal JSON value: enough to write run manifests and
//! checkpoint journals and read them back, with zero dependencies (the
//! build environment has no crates.io access, so serde is not an
//! option).
//!
//! Conventions used by the sweep subsystem:
//! * objects preserve insertion order, so rendered output is
//!   deterministic;
//! * numbers are `f64` — every count the sweep stores is far below
//!   2^53, and full-range 64-bit digests are stored as hex *strings*;
//! * rendering is compact (no whitespace) except for the top-level
//!   [`Json::pretty`] used for manifests.

use std::fmt::Write as _;

/// A parsed or under-construction JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Counts stored by the sweep stay below 2^53 so the
    /// `f64` representation is exact.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder seed.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering for human-read manifests.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * (depth + 1)),
                " ".repeat(width * depth),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        debug_assert!(n <= 1u64 << 53, "u64 above 2^53 must be stored as hex text");
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected , or ] at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected : at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected , or }} at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (input is a &str, so slicing
                // on char boundaries is safe via the str API)
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_compact_and_ordered() {
        let j = Json::obj()
            .field("b", 2u64)
            .field("a", "x\"y\n")
            .field("list", vec![Json::Num(1.5), Json::Bool(true), Json::Null]);
        assert_eq!(j.render(), r#"{"b":2,"a":"x\"y\n","list":[1.5,true,null]}"#);
    }

    #[test]
    fn roundtrip_through_parse() {
        let j = Json::obj()
            .field("key", "f3/gzip/+PGU")
            .field("ms", 123u64)
            .field("nested", Json::obj().field("hex", "deadbeefdeadbeef"))
            .field("arr", vec![Json::from("a"), Json::from(0u64)]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n": 42, "s": "hi", "a": [1,2]}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(j.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "{\"a\":}",
            "1 2",
            "nulll",
            "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let j = Json::Str("päper \u{1}\t→".to_string());
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}

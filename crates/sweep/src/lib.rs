//! # predbranch-sweep — deterministic parallel experiment sweeps
//!
//! The study's cost is dominated by its experiment grid: benchmarks ×
//! predictor specs × machine options, every cell independent of every
//! other. This crate supplies the machinery to execute such grids in
//! parallel **without changing a byte of output**:
//!
//! * [`WorkerPool`] — a from-scratch work-stealing thread pool
//!   (std::thread + mutexed deques, no external deps). Its
//!   [`WorkerPool::run_batch`] primitive returns results in submission
//!   order no matter which worker computed what when, which is the
//!   whole determinism story: callers aggregate over the returned
//!   vector exactly as a sequential loop would. The batch item is
//!   whatever the caller makes it — since gang replay landed, the
//!   bench runner schedules *gang units* (all cells sharing one event
//!   stream and timing, replayed in a single pass) rather than
//!   individual cells, and flattens each unit's per-lane results back
//!   into cell submission order.
//! * [`Checkpoint`] — an append-only, per-line-flushed JSONL journal of
//!   completed cells keyed by content digests, so an interrupted sweep
//!   resumes from completed cells only (a torn tail is truncated and
//!   the affected cell re-runs).
//! * [`ManifestBuilder`] / [`CellRecord`] — a JSON run record: every
//!   cell's label, key, result source (live / trace-cache replay /
//!   recording / checkpoint), and wall-clock, in canonical order, plus
//!   optional shard provenance for partitioned sweeps.
//! * [`merge_journals`] / [`merge_manifests`] — stitch the shard-scoped
//!   journals and manifests of an `experiments --shard i/N` fleet into
//!   one canonical run record with exactly-once semantics keyed on the
//!   content-addressed cell keys; the canonical forms are byte-identical
//!   to a merged single-process run over the same cells.
//! * [`Json`] — the minimal ordered JSON value the two above share
//!   (the build environment is offline; serde is not available).
//!
//! The `predbranch-bench` crate builds its `RunContext` on these pieces
//! and exposes them as `experiments --jobs N --manifest <path>
//! --checkpoint <path>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod json;
pub mod manifest;
pub mod merge;
pub mod pool;

pub use checkpoint::Checkpoint;
pub use json::Json;
pub use manifest::{CellRecord, CellSource, ManifestBuilder};
pub use merge::{merge_journals, merge_manifests, MergeReport};
pub use pool::WorkerPool;

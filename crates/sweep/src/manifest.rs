//! Run manifests: a JSON record of what a sweep did.
//!
//! A manifest answers, after the fact: which cells ran, where each
//! result came from (live execution, a trace-cache replay, a fresh
//! recording, or a checkpoint from an interrupted run), how long each
//! cell took, and against which workload fingerprints. Cells are listed
//! in canonical (label, key) order so two manifests of the same sweep
//! differ only in timings.

use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// Where a cell's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Executed through the functional simulator, no cache involved.
    Live,
    /// Replayed from an existing trace-cache entry.
    Replayed,
    /// Executed once and recorded into the trace cache.
    Recorded,
    /// Skipped entirely: restored from a checkpoint journal.
    Checkpoint,
}

impl CellSource {
    /// The manifest's string form.
    pub fn as_str(self) -> &'static str {
        match self {
            CellSource::Live => "live",
            CellSource::Replayed => "replayed",
            CellSource::Recorded => "recorded",
            CellSource::Checkpoint => "checkpoint",
        }
    }
}

/// One completed cell, as recorded in the manifest.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Content-addressed cell key (also the checkpoint key).
    pub key: String,
    /// Human-readable cell label, e.g. `f3/gzip/+PGU`.
    pub label: String,
    /// Wall-clock milliseconds spent producing the result.
    pub wall_ms: u64,
    /// Where the result came from.
    pub source: CellSource,
}

/// Collects cell records concurrently during a sweep and renders the
/// final [`Json`] manifest.
#[derive(Debug)]
pub struct ManifestBuilder {
    started: Instant,
    command: String,
    jobs: usize,
    shard: Option<(u32, u32)>,
    cells: Mutex<Vec<CellRecord>>,
    fingerprints: Mutex<Vec<(String, String)>>,
}

impl ManifestBuilder {
    /// A builder stamped with the sweep's command line and worker count.
    pub fn new(command: impl Into<String>, jobs: usize) -> Self {
        ManifestBuilder {
            started: Instant::now(),
            command: command.into(),
            jobs,
            shard: None,
            cells: Mutex::new(Vec::new()),
            fingerprints: Mutex::new(Vec::new()),
        }
    }

    /// Stamps shard provenance (`index` of `of`) into the manifest —
    /// the shard-scoped record a later `merge` step stitches from. The
    /// merged canonical manifest projects this away.
    pub fn with_shard(mut self, index: u32, of: u32) -> Self {
        self.shard = Some((index, of));
        self
    }

    /// Records one completed cell (thread-safe; called from workers).
    pub fn record_cell(&self, record: CellRecord) {
        self.cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }

    /// Attaches a named workload fingerprint (e.g. the compile-options
    /// digest the cells were keyed under), hex-encoded by the caller.
    pub fn fingerprint(&self, name: impl Into<String>, hex: impl Into<String>) {
        self.fingerprints
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((name.into(), hex.into()));
    }

    /// Cells recorded so far.
    pub fn cell_count(&self) -> usize {
        self.cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Renders the manifest. `cache` is the trace-cache (replays,
    /// recordings) counter pair when a cache was attached.
    pub fn finish(&self, cache: Option<(u64, u64)>) -> Json {
        let mut cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        // canonical order: completion order depends on scheduling, the
        // manifest must not
        cells.sort_by(|a, b| (&a.label, &a.key).cmp(&(&b.label, &b.key)));

        let mut by_source = [0u64; 4];
        for cell in &cells {
            by_source[cell.source as usize] += 1;
        }
        let totals = Json::obj()
            .field("cells", cells.len())
            .field("live", by_source[CellSource::Live as usize])
            .field("replayed", by_source[CellSource::Replayed as usize])
            .field("recorded", by_source[CellSource::Recorded as usize])
            .field("checkpoint", by_source[CellSource::Checkpoint as usize])
            .field("wall_ms", self.started.elapsed().as_millis() as u64);

        let fingerprints = self
            .fingerprints
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .fold(Json::obj(), |obj, (name, hex)| {
                obj.field(name, hex.as_str())
            });

        let mut manifest = Json::obj()
            .field("manifest_version", 1u64)
            .field("command", self.command.as_str())
            .field("jobs", self.jobs);
        if let Some((index, of)) = self.shard {
            manifest = manifest.field(
                "shard",
                Json::obj()
                    .field("index", u64::from(index))
                    .field("of", u64::from(of)),
            );
        }
        let mut manifest = manifest
            .field("fingerprints", fingerprints)
            .field("totals", totals);
        if let Some((replays, recordings)) = cache {
            manifest = manifest.field(
                "trace_cache",
                Json::obj()
                    .field("replays", replays)
                    .field("recordings", recordings),
            );
        }
        manifest.field(
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|cell| {
                        Json::obj()
                            .field("label", cell.label.as_str())
                            .field("key", cell.key.as_str())
                            .field("source", cell.source.as_str())
                            .field("wall_ms", cell.wall_ms)
                    })
                    .collect(),
            ),
        )
    }

    /// Renders and writes the manifest to `path` (pretty-printed).
    pub fn write(&self, path: impl AsRef<Path>, cache: Option<(u64, u64)>) -> io::Result<()> {
        std::fs::write(path, self.finish(cache).pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_orders_cells_canonically() {
        let builder = ManifestBuilder::new("experiments --jobs 2 f3", 2);
        builder.record_cell(CellRecord {
            key: "k2".into(),
            label: "f3/vpr/gshare".into(),
            wall_ms: 9,
            source: CellSource::Recorded,
        });
        builder.record_cell(CellRecord {
            key: "k1".into(),
            label: "f3/gzip/gshare".into(),
            wall_ms: 4,
            source: CellSource::Replayed,
        });
        builder.fingerprint("compile_options", "00000000deadbeef");
        let manifest = builder.finish(Some((1, 1)));
        let cells = manifest.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("label").unwrap().as_str(),
            Some("f3/gzip/gshare")
        );
        assert_eq!(
            manifest
                .get("totals")
                .unwrap()
                .get("cells")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            manifest
                .get("totals")
                .unwrap()
                .get("replayed")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            manifest
                .get("fingerprints")
                .unwrap()
                .get("compile_options")
                .unwrap()
                .as_str(),
            Some("00000000deadbeef")
        );
        // the rendered form parses back
        assert!(crate::json::Json::parse(&manifest.pretty()).is_ok());
    }
}

//! Merging shard-scoped sweep artifacts into one canonical run record.
//!
//! A sharded sweep (`experiments --shard i/N`) produces one checkpoint
//! journal and one manifest per shard, each covering only the cells the
//! shard owns. This module stitches them back together with
//! **exactly-once** semantics built on the content-addressed cell keys:
//!
//! * [`merge_journals`] unions journal entries, deduplicating by key.
//!   Two entries may share a key only if their payloads are identical —
//!   equal keys encode equal inputs, so divergent payloads mean a
//!   corrupted or mismatched shard and the merge refuses. Output lines
//!   are sorted by key and stripped of per-run wall-clock, so the
//!   merged journal is a *canonical form*: merging any set of journals
//!   covering the same cells (one single-process journal, or N shard
//!   journals) yields byte-identical output.
//! * [`merge_manifests`] unions manifest cell records, deduplicating by
//!   (label, key), and projects away everything execution-dependent
//!   (sources, wall-clock, command line, worker count). The result is
//!   the same canonical form whether the inputs are N shard manifests
//!   or one single-process manifest — which is exactly what the
//!   `shard-smoke` CI job byte-diffs.
//!
//! Shard provenance (which shard produced which artifact) lives in the
//! *shard-scoped* files: each shard journal opens with a keyless note
//! line ([`crate::Checkpoint::note`]) and each shard manifest carries a
//! `shard` object. Canonical outputs deliberately contain neither, so
//! that a merged sharded run and a single-process run are comparable
//! byte-for-byte.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;

/// What a merge did, for operator-facing summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeReport {
    /// Distinct entries in the merged output.
    pub entries: usize,
    /// Input entries that duplicated an already-merged key (and agreed).
    pub duplicates: usize,
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} entries ({} duplicates agreed)",
            self.entries, self.duplicates
        )
    }
}

/// Merges checkpoint-journal texts (as produced by
/// [`crate::Checkpoint`]) into the canonical merged journal: one
/// `{"k": <key>, "v": <payload>}` line per distinct key, sorted by key,
/// trailing newline. Keyless note lines (shard provenance) are dropped;
/// a torn trailing line is ignored exactly as the journal loader
/// ignores it. Returns the canonical text and a [`MergeReport`].
///
/// # Errors
///
/// Two entries sharing a key with *different* payloads — equal
/// content-addressed keys must mean equal results, so this is refused,
/// naming the key and the offending input.
pub fn merge_journals(inputs: &[(String, String)]) -> Result<(String, MergeReport), String> {
    let mut merged: BTreeMap<String, String> = BTreeMap::new();
    let mut report = MergeReport::default();
    for (name, text) in inputs {
        for segment in text.split_inclusive('\n') {
            if !segment.ends_with('\n') {
                break; // torn tail: the loader would re-run it too
            }
            let line = segment.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                continue;
            }
            let Ok(entry) = Json::parse(line) else {
                break; // torn mid-file write: stop trusting this input
            };
            let (Some(key), Some(payload)) =
                (entry.get("k").and_then(Json::as_str), entry.get("v"))
            else {
                continue; // keyless note line (provenance)
            };
            let rendered = payload.render();
            match merged.get(key) {
                None => {
                    merged.insert(key.to_string(), rendered);
                }
                Some(existing) if *existing == rendered => report.duplicates += 1,
                Some(_) => {
                    return Err(format!(
                        "journal merge conflict: key {key} in {name} disagrees with an \
                         earlier input (equal keys must carry equal payloads)"
                    ));
                }
            }
        }
    }
    report.entries = merged.len();
    let mut out = String::new();
    for (key, payload) in &merged {
        out.push_str(&Json::obj().field("k", key.as_str()).render());
        // splice the already-rendered payload in to avoid a re-parse
        out.truncate(out.len() - 1);
        out.push_str(",\"v\":");
        out.push_str(payload);
        out.push_str("}\n");
    }
    Ok((out, report))
}

/// Merges parsed manifests into the canonical merged manifest: the
/// shared `manifest_version`, the union of fingerprints, and the union
/// of cells deduplicated by (label, key) in canonical (label, key)
/// order. Execution-dependent fields (command, jobs, totals, sources,
/// wall-clock, shard provenance) are projected away, so the output is
/// byte-comparable across any partitioning of the same sweep.
///
/// # Errors
///
/// * Two manifests naming the same fingerprint with different values —
///   the shards did not run the same workload build.
/// * An input missing its `cells` array (not a manifest).
pub fn merge_manifests(inputs: &[(String, Json)]) -> Result<(Json, MergeReport), String> {
    let mut fingerprints: BTreeMap<String, String> = BTreeMap::new();
    let mut cells: BTreeMap<(String, String), ()> = BTreeMap::new();
    let mut report = MergeReport::default();
    for (name, manifest) in inputs {
        if let Some(Json::Obj(fields)) = manifest.get("fingerprints") {
            for (fp_name, value) in fields {
                let value = value.as_str().unwrap_or_default().to_string();
                match fingerprints.get(fp_name) {
                    None => {
                        fingerprints.insert(fp_name.clone(), value);
                    }
                    Some(existing) if *existing == value => {}
                    Some(existing) => {
                        return Err(format!(
                            "manifest merge conflict: fingerprint {fp_name} is {value} in \
                             {name} but {existing} in an earlier input"
                        ));
                    }
                }
            }
        }
        let records = manifest
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{name} has no cells array (not a run manifest)"))?;
        for record in records {
            let label = record
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{name} has a cell without a label"))?;
            let key = record
                .get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{name} has a cell without a key"))?;
            if cells
                .insert((label.to_string(), key.to_string()), ())
                .is_some()
            {
                report.duplicates += 1;
            }
        }
    }
    report.entries = cells.len();
    let fingerprints = fingerprints.iter().fold(Json::obj(), |obj, (name, hex)| {
        obj.field(name, hex.as_str())
    });
    let merged = Json::obj()
        .field("manifest_version", 1u64)
        .field("fingerprints", fingerprints)
        .field(
            "cells",
            Json::Arr(
                cells
                    .keys()
                    .map(|(label, key)| {
                        Json::obj()
                            .field("label", label.as_str())
                            .field("key", key.as_str())
                    })
                    .collect(),
            ),
        );
    Ok((merged, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_line(key: &str, ms: u64, v: u64) -> String {
        format!(
            "{}\n",
            Json::obj()
                .field("k", key)
                .field("ms", ms)
                .field("v", v)
                .render()
        )
    }

    #[test]
    fn journal_merge_is_canonical_and_exactly_once() {
        let shard0 = format!(
            "{{\"note\":\"shard\",\"index\":0,\"of\":2}}\n{}{}",
            journal_line("b", 9, 2),
            journal_line("a", 4, 1),
        );
        let shard1 = format!("{}{}", journal_line("c", 7, 3), journal_line("a", 99, 1));
        let (merged, report) = merge_journals(&[
            ("s0.ckpt".into(), shard0),
            ("s1.ckpt".into(), shard1.clone()),
        ])
        .unwrap();
        assert_eq!(
            merged,
            "{\"k\":\"a\",\"v\":1}\n{\"k\":\"b\",\"v\":2}\n{\"k\":\"c\",\"v\":3}\n"
        );
        assert_eq!(report.entries, 3);
        assert_eq!(report.duplicates, 1);

        // canonical: merging the merge is a fixed point, and merging a
        // single equivalent journal yields the same bytes
        let (again, _) = merge_journals(&[("m".into(), merged.clone())]).unwrap();
        assert_eq!(again, merged);

        // divergent payload under an equal key is refused
        let bad = journal_line("a", 4, 999);
        let err = merge_journals(&[("s1".into(), shard1), ("bad".into(), bad)]).unwrap_err();
        assert!(err.contains("key a"), "{err}");
    }

    #[test]
    fn journal_merge_ignores_torn_tails() {
        let torn = format!("{}{{\"k\":\"x\",\"ms\":1,\"v\"", journal_line("a", 1, 1));
        let (merged, report) = merge_journals(&[("torn".into(), torn)]).unwrap();
        assert_eq!(merged, "{\"k\":\"a\",\"v\":1}\n");
        assert_eq!(report.entries, 1);
    }

    #[test]
    fn manifest_merge_projects_to_canonical_cells() {
        let shard = |cells: &[(&str, &str)], index: u64| {
            let records = cells
                .iter()
                .map(|(label, key)| {
                    Json::obj()
                        .field("label", *label)
                        .field("key", *key)
                        .field("source", "live")
                        .field("wall_ms", 12u64)
                })
                .collect();
            Json::obj()
                .field("manifest_version", 1u64)
                .field("command", "experiments --shard")
                .field("shard", Json::obj().field("index", index).field("of", 2u64))
                .field("fingerprints", Json::obj().field("compile-options", "aa"))
                .field("cells", Json::Arr(records))
        };
        let (merged, report) = merge_manifests(&[
            (
                "s1.json".into(),
                shard(&[("f3/vpr", "k2"), ("f3/gzip", "k1")], 1),
            ),
            ("s0.json".into(), shard(&[("f3/gzip", "k1")], 0)),
        ])
        .unwrap();
        assert_eq!(report.entries, 2);
        assert_eq!(report.duplicates, 1);
        let cells = merged.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells[0].get("label").unwrap().as_str(), Some("f3/gzip"));
        assert_eq!(cells[1].get("label").unwrap().as_str(), Some("f3/vpr"));
        // projected: no sources, no wall-clock, no shard provenance
        assert!(merged.get("shard").is_none());
        assert!(cells[0].get("source").is_none());

        // fingerprint conflicts are refused
        let other = Json::obj()
            .field("fingerprints", Json::obj().field("compile-options", "bb"))
            .field("cells", Json::Arr(Vec::new()));
        let err = merge_manifests(&[
            ("good".into(), shard(&[("x", "k9")], 0)),
            ("bad".into(), other),
        ])
        .unwrap_err();
        assert!(err.contains("compile-options"), "{err}");
    }
}

//! A from-scratch work-stealing thread pool (std::thread + mutexed
//! deques — no external dependencies).
//!
//! The pool exists for one job shape: a *batch* of independent, pure,
//! CPU-bound cells whose results must come back in submission order so
//! downstream output is deterministic at any worker count. Each worker
//! owns a deque; tasks spawned from a worker go to its own deque (LIFO
//! for locality), external submissions go to a shared injector, and an
//! idle worker steals FIFO from the injector first and then from its
//! siblings. The thread that submits a batch does not block idly: it
//! *helps*, executing queued tasks until its batch completes, so a pool
//! configured for `n` jobs runs `n` cells concurrently with only `n - 1`
//! spawned threads — and nested batches (a task submitting a sub-batch)
//! cannot deadlock, because every waiter drains queues instead of
//! parking unconditionally.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering the guard from a poisoned lock instead of
/// propagating the panic: queue and result structures stay consistent
/// under plain mutation, so a panicking cell must not wedge every
/// subsequent batch (the cell's own panic is still reported by
/// [`WorkerPool::run_batch`]).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared {
    /// External submissions land here; workers drain it FIFO.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker: owner pushes/pops the back, thieves steal
    /// from the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Sleep gate: `epoch` increments on every push so a worker that
    /// found all queues empty can detect a submission that raced ahead
    /// of its park.
    gate: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push_external(&self, task: Task) {
        lock_unpoisoned(&self.injector).push_back(task);
        self.announce();
    }

    fn push_local(&self, worker: usize, task: Task) {
        lock_unpoisoned(&self.locals[worker]).push_back(task);
        self.announce();
    }

    fn announce(&self) {
        let mut epoch = lock_unpoisoned(&self.gate);
        *epoch += 1;
        drop(epoch);
        self.wake.notify_all();
    }

    /// One task from anywhere: `own` (may be `None` for a helping
    /// non-worker thread) LIFO first, then the injector, then steal
    /// FIFO from the other workers.
    fn find_task(&self, own: Option<usize>) -> Option<Task> {
        if let Some(w) = own {
            if let Some(task) = lock_unpoisoned(&self.locals[w]).pop_back() {
                return Some(task);
            }
        }
        if let Some(task) = lock_unpoisoned(&self.injector).pop_front() {
            return Some(task);
        }
        for (i, victim) in self.locals.iter().enumerate() {
            if Some(i) == own {
                continue;
            }
            if let Some(task) = lock_unpoisoned(victim).pop_front() {
                return Some(task);
            }
        }
        None
    }
}

std::thread_local! {
    /// (pool identity, worker index) of the current thread, when it is a
    /// pool worker — routes nested spawns to the worker's own deque.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

fn worker_index(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|w| match w.get() {
        Some((pool, index)) if pool == Arc::as_ptr(shared) as usize => Some(index),
        _ => None,
    })
}

/// The scheduler. See the module docs for the execution model.
///
/// # Examples
///
/// ```
/// use predbranch_sweep::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.run_batch(
///     (0u64..8)
///         .map(|i| {
///             let job: Box<dyn FnOnce() -> u64 + Send> = Box::new(move || i * i);
///             job
///         })
///         .collect(),
/// );
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("jobs", &self.jobs)
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool executing up to `jobs` tasks concurrently. `jobs - 1`
    /// worker threads are spawned; the submitting thread contributes the
    /// final lane by helping while it waits. `jobs` is clamped to at
    /// least 1 (a 1-job pool spawns no threads and runs batches inline).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let workers = jobs - 1;
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            gate: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawning a sweep worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            jobs,
        }
    }

    /// The configured parallelism (including the helping submitter).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Submits a fire-and-forget task. From a worker thread of this
    /// pool the task goes to that worker's own deque (and is the first
    /// stolen by idle siblings); from any other thread it goes to the
    /// shared injector.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        match worker_index(&self.shared) {
            Some(w) => self.shared.push_local(w, Box::new(task)),
            None => self.shared.push_external(Box::new(task)),
        }
    }

    /// Runs every job and returns their results **in submission order**,
    /// regardless of which worker executed what when — the property the
    /// sweep's determinism guarantee rests on. The calling thread helps
    /// execute queued tasks while it waits. If any job panicked, the
    /// panic is re-raised here (after the whole batch has settled) with
    /// the first failing job's message.
    pub fn run_batch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        let state = Arc::new(BatchState {
            results: Mutex::new((0..total).map(|_| None).collect()),
            done: AtomicUsize::new(0),
        });
        for (index, job) in jobs.into_iter().enumerate() {
            let state = Arc::clone(&state);
            self.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job))
                    .map_err(|payload| panic_message(payload.as_ref()));
                lock_unpoisoned(&state.results)[index] = Some(outcome);
                state.done.fetch_add(1, Ordering::Release);
            });
        }

        // Help until the batch settles. Tasks from *other* batches may be
        // picked up here too; they are pure computation, so helping with
        // them only shortens the global critical path.
        let own = worker_index(&self.shared);
        while state.done.load(Ordering::Acquire) < total {
            match self.shared.find_task(own) {
                Some(task) => task(),
                None => {
                    // Our remaining cells are mid-execution on other
                    // workers; sleep until something is published or a
                    // short timeout passes (re-checking `done` either way).
                    let epoch = lock_unpoisoned(&self.shared.gate);
                    if state.done.load(Ordering::Acquire) >= total {
                        break;
                    }
                    let _unused = self
                        .shared
                        .wake
                        .wait_timeout(epoch, Duration::from_millis(1))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }

        let results = std::mem::take(&mut *lock_unpoisoned(&state.results));
        results
            .into_iter()
            .map(|slot| match slot.expect("batch slot settled") {
                Ok(value) => value,
                Err(message) => panic!("sweep cell panicked: {message}"),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.announce();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct BatchState<T> {
    results: Mutex<Vec<Option<Result<T, String>>>>,
    done: AtomicUsize,
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, index))));
    loop {
        match shared.find_task(Some(index)) {
            Some(task) => task(),
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let epoch = lock_unpoisoned(&shared.gate);
                let before = *epoch;
                // Re-check under the gate: a push after our scan bumped
                // the epoch and we must not sleep through it.
                let _unused = shared
                    .wake
                    .wait_timeout_while(epoch, Duration::from_millis(50), |now| *now == before)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    // stagger completion to scramble execution order
                    std::thread::sleep(Duration::from_micros((64 - i) as u64 * 10));
                    i
                });
                job
            })
            .collect();
        assert_eq!(pool.run_batch(jobs), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.jobs(), 1);
        let caller = std::thread::current().id();
        let ids = pool.run_batch(vec![
            Box::new(move || std::thread::current().id() == caller)
                as Box<dyn FnOnce() -> bool + Send>,
        ]);
        assert_eq!(ids, vec![true], "a 1-job pool must execute on the caller");
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(3));
        let outer: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4)
            .map(|i| {
                let pool = Arc::clone(&pool);
                let job: Box<dyn FnOnce() -> u64 + Send> = Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4)
                        .map(|j| {
                            let job: Box<dyn FnOnce() -> u64 + Send> = Box::new(move || i * 10 + j);
                            job
                        })
                        .collect();
                    pool.run_batch(inner).into_iter().sum()
                });
                job
            })
            .collect();
        let sums = pool.run_batch(outer);
        assert_eq!(sums, vec![6, 46, 86, 126]);
    }

    #[test]
    fn panicking_cell_reports_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("cell exploded")),
            Box::new(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs)))
            .expect_err("batch must propagate the cell panic");
        assert!(panic_message(err.as_ref()).contains("cell exploded"));
        // the pool is still usable afterwards (no poisoned queues)
        let ok = pool.run_batch(vec![
            Box::new(|| 7u32) as Box<dyn FnOnce() -> u32 + Send>,
            Box::new(|| 8),
        ]);
        assert_eq!(ok, vec![7, 8]);
    }

    #[test]
    fn spawn_from_worker_lands_on_own_deque_and_runs() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let (c, p) = (Arc::clone(&counter), Arc::clone(&pool));
        let results = pool.run_batch(vec![Box::new(move || {
            for _ in 0..10 {
                let c = Arc::clone(&c);
                p.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            true
        }) as Box<dyn FnOnce() -> bool + Send>]);
        assert_eq!(results, vec![true]);
        // spawned tasks are fire-and-forget; wait for them to drain
        for _ in 0..1000 {
            if counter.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}

//! Property tests for the scheduler's determinism contract: for any
//! batch of pure jobs and any worker count, `run_batch` must return
//! exactly what a sequential map would, in the same order.

use proptest::prelude::*;

use predbranch_sweep::WorkerPool;

/// A deliberately order-sensitive pure function (mixes index and seed).
fn cell(seed: u64, index: u64) -> u64 {
    let mut x = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for _ in 0..(index % 7) {
        x = x.rotate_left(13).wrapping_mul(5).wrapping_add(0xe654_6b64);
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_equals_sequential(
        jobs in 1usize..9,
        cells in 0usize..80,
        seed in any::<u64>(),
    ) {
        let sequential: Vec<u64> = (0..cells as u64).map(|i| cell(seed, i)).collect();
        let pool = WorkerPool::new(jobs);
        let batch: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..cells as u64)
            .map(|i| {
                let job: Box<dyn FnOnce() -> u64 + Send> = Box::new(move || cell(seed, i));
                job
            })
            .collect();
        prop_assert_eq!(pool.run_batch(batch), sequential);
    }

    #[test]
    fn repeated_batches_on_one_pool_stay_deterministic(
        rounds in 1usize..5,
        seed in any::<u64>(),
    ) {
        let pool = WorkerPool::new(4);
        let expected: Vec<u64> = (0..32).map(|i| cell(seed, i)).collect();
        for _ in 0..rounds {
            let batch: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..32)
                .map(|i| {
                    let job: Box<dyn FnOnce() -> u64 + Send> = Box::new(move || cell(seed, i));
                    job
                })
                .collect();
            prop_assert_eq!(pool.run_batch(batch), expected.clone());
        }
    }
}

//! `pbtrace` — record, inspect, and verify predbranch trace files.
//!
//! ```text
//! pbtrace record --bench <name> -o <file.pbt> [--plain] [--hoist]
//!                [--seed N] [--budget N]
//! pbtrace record <file.s> -o <file.pbt> [--seed N] [--budget N]
//! pbtrace info   <file.pbt> [--json]
//! pbtrace dump   <file.pbt> [--limit N]
//! pbtrace verify <dir|file.pbt> [--quiet]
//! pbtrace migrate <dir>
//! pbtrace stats  <dir> [--json] [--memo-streams N]
//! pbtrace characterize <dir|file.pbt> [--json] [--jobs N]
//! pbtrace list
//! ```
//!
//! `record` compiles a suite benchmark (or assembles a `.s` file) and
//! executes it once, streaming the event trace to disk. `info` prints
//! the provenance header and footer statistics, `dump` prints events as
//! text. `verify` fully checks every trace — and its `.pbtd` segment
//! sidecar, when one exists — under a file or cache directory:
//! structure, event count, checksums, and sidecar↔trace binding; it
//! exits non-zero if *any* file fails, and `--quiet` suppresses
//! per-file OK lines so CI logs only show failures. `migrate` builds
//! missing (or stale) segment sidecars for existing v1 cache entries in
//! place — atomic publish, idempotent. `stats` summarizes a trace-cache
//! directory: entry count, total bytes, segment coverage, and a
//! per-benchmark breakdown. `characterize` replays each trace once
//! through the streaming predictability characterizer and prints the
//! per-static-branch H2P taxonomy; its output is byte-identical at any
//! `--jobs` level.
//!
//! `--json` renders through the same ordered-JSON module the sweep
//! manifests use, so field order — and therefore the byte stream — is
//! deterministic.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use predbranch_characterize::{Characterization, Characterizer};
use predbranch_isa::{assemble, Program};
use predbranch_sim::{Event, Executor, Memory};
use predbranch_sweep::{Json, WorkerPool};
use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

const USAGE: &str = "usage:
  pbtrace record --bench <name> -o <file.pbt> [--plain] [--hoist] [--seed N] [--budget N]
  pbtrace record <file.s> -o <file.pbt> [--seed N] [--budget N]
  pbtrace info   <file.pbt> [--json]
  pbtrace dump   <file.pbt> [--limit N]
  pbtrace verify <dir|file.pbt> [--quiet]
  pbtrace migrate <dir>
  pbtrace stats  <dir> [--json] [--memo-streams N]
  pbtrace characterize <dir|file.pbt> [--json] [--jobs N]
  pbtrace list";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("dump") => dump(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("migrate") => migrate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("characterize") => characterize(&args[1..]),
        Some("list") => {
            for bench in suite() {
                println!("{:<12} {}", bench.name(), bench.description());
            }
            Ok(())
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pbtrace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn record(args: &[String]) -> Result<(), String> {
    let mut bench_name: Option<String> = None;
    let mut asm_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut seed = EVAL_SEED;
    let mut budget = 2 * predbranch_workloads::DEFAULT_MAX_INSTRUCTIONS;
    let mut plain = false;
    let mut hoist = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => bench_name = Some(take(&mut it, "--bench")?),
            "-o" | "--out" => out = Some(take(&mut it, "-o")?),
            "--seed" => seed = parse(&take(&mut it, "--seed")?)?,
            "--budget" => budget = parse(&take(&mut it, "--budget")?)?,
            "--plain" => plain = true,
            "--hoist" => hoist = true,
            path if !path.starts_with('-') && asm_path.is_none() => {
                asm_path = Some(path.to_string());
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let out = out.ok_or_else(|| format!("record needs -o <file.pbt>\n{USAGE}"))?;

    let (name, program, memory) = match (bench_name, asm_path) {
        (Some(name), None) => {
            let bench = suite()
                .into_iter()
                .find(|b| b.name() == name)
                .ok_or_else(|| format!("unknown benchmark {name} (try `pbtrace list`)"))?;
            let opts = CompileOptions {
                hoist,
                ..CompileOptions::default()
            };
            let compiled = compile_benchmark(&bench, &opts);
            let program = if plain {
                compiled.plain
            } else {
                compiled.predicated
            };
            let variant = if plain { "plain" } else { "pred" };
            println!(
                "compiled {} ({variant}, options fingerprint {:016x})",
                bench.name(),
                opts.fingerprint()
            );
            let label = bench.trace_label(variant, seed);
            (label, program, bench.input(seed))
        }
        (None, Some(path)) => {
            let text = fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let program = assemble(&text).map_err(|e| format!("{path}: {e}"))?;
            let name = path
                .rsplit('/')
                .next()
                .unwrap_or(&path)
                .trim_end_matches(".s")
                .to_string();
            (name, program, Memory::new())
        }
        _ => return Err(format!("record needs --bench <name> or <file.s>\n{USAGE}")),
    };

    let summary = record_program(&name, &program, memory, seed, budget, &out)
        .map_err(|e| format!("recording {out}: {e}"))?;
    println!(
        "recorded {out}: {} instructions, {} branches ({} conditional), {} pred writes{}",
        summary.instructions,
        summary.branches,
        summary.conditional_branches,
        summary.pred_writes,
        if summary.halted { "" } else { " [budget hit]" },
    );
    Ok(())
}

fn record_program(
    name: &str,
    program: &Program,
    memory: Memory,
    seed: u64,
    budget: u64,
    out: &str,
) -> std::io::Result<predbranch_sim::RunSummary> {
    let header = TraceHeader::new(name, program_hash(program), seed, budget);
    let mut writer = TraceWriter::create(out, &header)?;
    let summary = Executor::new(program, memory).run(&mut writer, budget);
    writer.finish(&summary)?;
    Ok(summary)
}

fn info(args: &[String]) -> Result<(), String> {
    let (path, json) = path_and_json(args, "info")?;
    let reader = TraceReader::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let header = reader.header().clone();
    let stats = reader.verify().map_err(|e| format!("{path}: {e}"))?;
    if json {
        let doc = Json::obj()
            .field("file", path.as_str())
            .field(
                "format_version",
                u64::from(predbranch_trace::FORMAT_VERSION),
            )
            .field("benchmark", header.name.as_str())
            .field("program_hash", format!("{:016x}", header.program_hash))
            .field("seed", format!("{:016x}", header.seed))
            .field("budget", json_u64(header.budget))
            .field("events", json_u64(stats.events))
            .field("branches", json_u64(stats.branches))
            .field("conditional", json_u64(stats.summary.conditional_branches))
            .field("region", json_u64(stats.summary.region_branches))
            .field("pred_writes", json_u64(stats.pred_writes))
            .field("instructions", json_u64(stats.summary.instructions))
            .field("halted", stats.summary.halted)
            .field("checksum", format!("{:016x}", stats.checksum));
        println!("{}", doc.pretty());
        return Ok(());
    }
    println!("file:          {path}");
    println!("format:        PBTR v{}", predbranch_trace::FORMAT_VERSION);
    println!("benchmark:     {}", header.name);
    println!("program hash:  {:016x}", header.program_hash);
    println!("input seed:    {:#x}", header.seed);
    println!("budget:        {}", header.budget);
    println!("events:        {}", stats.events);
    println!(
        "  branches:    {} ({} conditional, {} region)",
        stats.branches, stats.summary.conditional_branches, stats.summary.region_branches
    );
    println!("  pred writes: {}", stats.pred_writes);
    println!("instructions:  {}", stats.summary.instructions);
    println!("halted:        {}", stats.summary.halted);
    println!("checksum:      {:016x}", stats.checksum);
    Ok(())
}

fn dump(args: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut limit = u64::MAX;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--limit" => limit = parse(&take(&mut it, "--limit")?)?,
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("dump needs a file\n{USAGE}"))?;
    let reader = TraceReader::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let (events, stats) = reader.read_events().map_err(|e| format!("{path}: {e}"))?;
    for event in events.iter().take(limit as usize) {
        match event {
            Event::Branch(b) => println!(
                "{:>10}  branch     pc={:<6} target={:<6} {} {}{}",
                b.index,
                b.pc,
                b.target,
                if b.taken { "taken    " } else { "not-taken" },
                if b.conditional {
                    format!("guard={}", b.guard)
                } else {
                    "uncond".into()
                },
                b.region.map_or(String::new(), |r| format!(" region={r}")),
            ),
            Event::PredWrite(p) => println!(
                "{:>10}  pred-write pc={:<6} {}={} (guard {}={})",
                p.index, p.pc, p.preg, p.value as u8, p.guard, p.guard_value as u8,
            ),
        }
    }
    if (events.len() as u64) > limit {
        println!("... {} more events", events.len() as u64 - limit);
    }
    println!(
        "{} events, {} instructions, checksum {:016x}",
        stats.events, stats.summary.instructions, stats.checksum
    );
    Ok(())
}

/// Verifies one `.pbt` (structure, count, checksum) plus its segment
/// sidecar when one exists (structure, checksum, record validity,
/// source binding). Prints one line per checked file; OK lines are
/// suppressed under `--quiet`. Returns how many of the checked files
/// failed.
fn verify_one(path: &std::path::Path, quiet: bool) -> u64 {
    let shown = path.display();
    let mut failed = 0u64;
    match TraceReader::open(path).and_then(|r| {
        let name = r.header().name.clone();
        r.verify().map(|stats| (name, stats))
    }) {
        Ok((name, stats)) => {
            if !quiet {
                println!(
                    "{shown}: OK ({name}, {} events, checksum {:016x})",
                    stats.events, stats.checksum
                );
            }
        }
        Err(e) => {
            println!("{shown}: FAILED: {e}");
            failed += 1;
        }
    }
    let seg = predbranch_trace::segment_path(path);
    if seg.exists() {
        match predbranch_trace::TraceMap::open_bound(path) {
            Ok(map) => {
                if !quiet {
                    println!(
                        "{}: OK ({} events, segment-served)",
                        seg.display(),
                        map.header().event_count
                    );
                }
            }
            Err(e) => {
                println!("{}: FAILED: {e}", seg.display());
                failed += 1;
            }
        }
    }
    failed
}

fn verify(args: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("verify needs a cache dir or file\n{USAGE}"))?;
    let files = trace_files(&path)?;
    let mut failed = 0u64;
    for file in &files {
        failed += verify_one(file, quiet);
    }
    if failed > 0 {
        return Err(format!("{failed} file(s) under {path} failed verification"));
    }
    if !quiet {
        println!("{}: all traces verified", path);
    }
    Ok(())
}

/// Builds segment sidecars for every v1 cache entry that lacks a valid
/// one. Idempotent: entries whose sidecar is already current are
/// skipped; publication is atomic (temp file + rename), so a crashed or
/// concurrent migrate never leaves a partial sidecar.
fn migrate(args: &[String]) -> Result<(), String> {
    let dir = one_path(args)?;
    if !std::path::Path::new(&dir).is_dir() {
        return Err(format!("{dir}: not a directory\n{USAGE}"));
    }
    let files = trace_files(&dir)?;
    let (mut built, mut current, mut failed) = (0u64, 0u64, 0u64);
    for file in &files {
        match predbranch_trace::migrate_trace(file) {
            Ok(predbranch_trace::MigrateOutcome::Built) => {
                println!("{}: built", predbranch_trace::segment_path(file).display());
                built += 1;
            }
            Ok(predbranch_trace::MigrateOutcome::UpToDate) => {
                current += 1;
            }
            Err(e) => {
                println!("{}: FAILED: {e}", file.display());
                failed += 1;
            }
        }
    }
    println!("migrated {dir}: {built} built, {current} up to date, {failed} failed");
    if failed > 0 {
        return Err(format!("{failed} entr(ies) under {dir} failed to migrate"));
    }
    Ok(())
}

/// The `.pbt` files under a path: the file itself, or a directory scan
/// (sorted). Read-only — never creates directories.
fn trace_files(path: &str) -> Result<Vec<PathBuf>, String> {
    let p = std::path::Path::new(path);
    if p.is_file() {
        return Ok(vec![p.to_path_buf()]);
    }
    if !p.is_dir() {
        return Err(format!("{path}: no such file or directory"));
    }
    let mut files: Vec<PathBuf> = fs::read_dir(p)
        .map_err(|e| format!("{path}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|f| {
            let name = f.file_name().map(|n| n.to_string_lossy().into_owned());
            name.is_some_and(|n| !n.starts_with('.') && n.ends_with(".pbt"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{path}: no .pbt traces found"));
    }
    Ok(files)
}

fn stats(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut json = false;
    let mut memo_streams: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--memo-streams" => memo_streams = Some(parse(&take(&mut it, "--memo-streams")?)?),
            p if !p.starts_with('-') && dir.is_none() => dir = Some(p.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("stats needs exactly one path\n{USAGE}"))?;
    let mut cache = predbranch_trace::TraceCache::open(&dir).map_err(|e| format!("{dir}: {e}"))?;
    if let Some(n) = memo_streams {
        cache = cache.with_memo_capacity(n as usize);
    }
    let entries = cache.scan().map_err(|e| format!("{dir}: {e}"))?;

    // group by benchmark: the label's leading component ("gzip-pred-1f"
    // → "gzip"); unreadable headers are grouped as "<corrupt>"
    let mut per_bench: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    let mut total_bytes = 0u64;
    let mut corrupt = 0u64;
    for entry in &entries {
        total_bytes += entry.bytes;
        let bench = match &entry.name {
            Some(name) => name.split('-').next().unwrap_or(name).to_string(),
            None => {
                corrupt += 1;
                "<corrupt>".to_string()
            }
        };
        let slot = per_bench.entry(bench).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += entry.bytes;
    }

    // Segment sidecars make the memo bound moot: segment-served
    // entries never touch the memo at all. Thrash only threatens the
    // uncovered remainder, so the warning below is scoped to it.
    let segments: u64 = entries.iter().filter(|e| e.segment_bytes.is_some()).count() as u64;
    let segment_bytes: u64 = entries.iter().filter_map(|e| e.segment_bytes).sum();

    // The in-process decoded-event memo holds `capacity` streams
    // (default DECODED_MEMO_CAPACITY; --memo-streams overrides); more
    // v1-only streams than that will thrash it (evict + re-decode on
    // every full sweep). This used to be silent — surface the bound,
    // whether this directory exceeds it, and this process's traffic.
    let memo = cache.memo_stats();
    let v1_only = entries.len() as u64 - segments;
    let memo_exceeded = v1_only > memo.capacity as u64;

    if json {
        let benchmarks: Vec<Json> = per_bench
            .iter()
            .map(|(bench, (count, bytes))| {
                Json::obj()
                    .field("benchmark", bench.as_str())
                    .field("entries", json_u64(*count))
                    .field("bytes", json_u64(*bytes))
            })
            .collect();
        let doc = Json::obj()
            .field("cache", dir.as_str())
            .field("entries", entries.len())
            .field("bytes", json_u64(total_bytes))
            .field("corrupt", json_u64(corrupt))
            .field(
                "segments",
                Json::obj()
                    .field("entries", json_u64(segments))
                    .field("bytes", json_u64(segment_bytes)),
            )
            .field(
                "memo",
                Json::obj()
                    .field("capacity", memo.capacity)
                    .field("hits", json_u64(memo.hits))
                    .field("misses", json_u64(memo.misses))
                    .field("evictions", json_u64(memo.evictions))
                    .field("exceeds_capacity", memo_exceeded),
            )
            .field("benchmarks", Json::Arr(benchmarks));
        println!("{}", doc.pretty());
        return Ok(());
    }

    if entries.is_empty() {
        println!("{dir}: empty cache (0 entries)");
        return Ok(());
    }
    println!("cache:     {dir}");
    println!("entries:   {}", entries.len());
    println!("bytes:     {total_bytes} ({})", human_bytes(total_bytes));
    if corrupt > 0 {
        println!("corrupt:   {corrupt} (unreadable headers)");
    }
    println!(
        "segments:  {segments} of {} entries segment-served ({})",
        entries.len(),
        human_bytes(segment_bytes)
    );
    println!(
        "memo:      {} of {} v1-only streams decodable at once; this process: \
         {} hits, {} misses, {} evictions",
        (v1_only as usize).min(memo.capacity),
        memo.capacity,
        memo.hits,
        memo.misses,
        memo.evictions
    );
    if memo_exceeded {
        println!(
            "warning:   {v1_only} v1-only traces exceed the {}-stream \
             decoded-event memo; per-cell sweeps over them will evict and \
             re-decode (run `pbtrace migrate` to build segment sidecars, \
             which bypass the memo entirely)",
            memo.capacity
        );
    }
    println!();
    println!("{:<14} {:>8} {:>14}", "benchmark", "entries", "bytes");
    for (bench, (count, bytes)) in &per_bench {
        println!("{bench:<14} {count:>8} {bytes:>14}");
    }
    Ok(())
}

/// Characterizes every trace in a cache directory (or one `.pbt` file):
/// replays each through a [`Characterizer`] — one worker job per trace
/// when `--jobs N` is given — and prints per-trace taxonomy tables or
/// one ordered-JSON document. Results print in scan order regardless of
/// job count, so output is byte-identical at any `--jobs` level.
fn characterize(args: &[String]) -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut json = false;
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--jobs" => jobs = parse(&take(&mut it, "--jobs")?)? as usize,
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("characterize needs a cache dir or file\n{USAGE}"))?;

    // TraceCache::open creates missing directories; a read-only command
    // must not, so resolve the file list by hand.
    let files: Vec<PathBuf> = if std::path::Path::new(&path).is_dir() {
        let cache =
            predbranch_trace::TraceCache::open(&path).map_err(|e| format!("{path}: {e}"))?;
        let entries = cache.scan().map_err(|e| format!("{path}: {e}"))?;
        entries.into_iter().map(|e| e.path).collect()
    } else if std::path::Path::new(&path).is_file() {
        vec![PathBuf::from(&path)]
    } else {
        return Err(format!("{path}: no such file or directory"));
    };
    if files.is_empty() {
        return Err(format!("{path}: no .pbt traces found"));
    }

    type CharTask = Box<dyn FnOnce() -> Result<(String, String, Characterization), String> + Send>;
    let tasks: Vec<CharTask> = files
        .into_iter()
        .map(|file| Box::new(move || characterize_one(&file)) as CharTask)
        .collect();
    // run_batch returns results in submission (= scan) order, so the
    // rendering below is independent of worker interleaving
    let results: Vec<(String, String, Characterization)> = WorkerPool::new(jobs)
        .run_batch(tasks)
        .into_iter()
        .collect::<Result<_, _>>()?;

    if json {
        let traces: Vec<Json> = results
            .iter()
            .map(|(file, benchmark, report)| {
                Json::obj()
                    .field("file", file.as_str())
                    .field("benchmark", benchmark.as_str())
                    .field("report", report.to_json())
            })
            .collect();
        let doc = Json::obj()
            .field("traces", Json::Arr(traces))
            .field("summary", {
                let mut buckets = Json::obj();
                for bucket in predbranch_characterize::Bucket::ALL {
                    let count: usize = results.iter().map(|(_, _, r)| r.bucket_count(bucket)).sum();
                    buckets = buckets.field(bucket.label(), count);
                }
                buckets
            });
        println!("{}", doc.pretty());
        return Ok(());
    }

    for (i, (_, benchmark, report)) in results.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("{}", report.table(benchmark.as_str()));
        println!("{}", report.summary());
    }
    Ok(())
}

/// Replays one trace file into a fresh [`Characterizer`]. Returns
/// `(file basename, benchmark name, report)` — the basename (never the
/// full path) so rendered output is location-independent.
fn characterize_one(file: &std::path::Path) -> Result<(String, String, Characterization), String> {
    let shown = file.display();
    let basename = file
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| shown.to_string());
    let reader = TraceReader::open(file).map_err(|e| format!("{shown}: {e}"))?;
    let benchmark = reader.header().name.clone();
    let mut sink = Characterizer::new();
    reader
        .replay(&mut sink)
        .map_err(|e| format!("{shown}: {e}"))?;
    Ok((basename, benchmark, sink.finish()))
}

/// Renders a `u64` for ordered JSON: a number when exactly
/// representable in f64, a decimal string beyond 2^53 (the module
/// asserts on lossy conversions).
fn json_u64(n: u64) -> Json {
    if n <= 1u64 << 53 {
        Json::from(n)
    } else {
        Json::Str(n.to_string())
    }
}

/// Parses `<path> [--json]` — the shared argument shape of `info` and
/// `stats`.
fn path_and_json(args: &[String], cmd: &str) -> Result<(String, bool), String> {
    let mut path: Option<String> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    path.map(|p| (p, json))
        .ok_or_else(|| format!("{cmd} needs exactly one path\n{USAGE}"))
}

fn human_bytes(bytes: u64) -> String {
    match bytes {
        b if b >= 1 << 30 => format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64),
        b if b >= 1 << 20 => format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64),
        b if b >= 1 << 10 => format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64),
        b => format!("{b} B"),
    }
}

fn one_path(args: &[String]) -> Result<String, String> {
    match args {
        [path] if !path.starts_with('-') => Ok(path.clone()),
        _ => Err(format!("expected exactly one trace file\n{USAGE}")),
    }
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}

fn parse(s: &str) -> Result<u64, String> {
    let (s, radix) = match s.strip_prefix("0x") {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u64::from_str_radix(s, radix).map_err(|e| format!("bad number {s}: {e}"))
}

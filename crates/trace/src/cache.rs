//! Content-addressed on-disk trace cache.
//!
//! Experiment sweeps evaluate many predictor configurations over the same
//! (binary, input) pairs; the cache lets each pair be executed through
//! the functional simulator exactly once and replayed thereafter. Keys
//! are content hashes (program encoding + input memory + budget, or an
//! explicit benchmark/compile-options/seed identity), so a stale file
//! can never be replayed for the wrong run. Writes go to a temporary
//! file in the cache directory and are published with an atomic rename —
//! concurrent runs may duplicate work but never observe a partial trace.
//!
//! Replays are served in preference order:
//!
//! 1. **Segment-served** (the default): each sealed `.pbt` gets a
//!    fixed-stride `.pbtd` sidecar (built at record time, or on the
//!    first decode of a v1-only entry — self-healing), opened once per
//!    process as an mmap-backed [`crate::TraceMap`] and replayed as
//!    borrowed batches straight off the page cache. No per-replay
//!    decode, no per-replay checksum walk, and memory residency is
//!    owned by the OS — any number of streams, shared across sharded
//!    sweep processes.
//! 2. **Decoded-event memo** (fallback for v1-only caches, e.g. when a
//!    sidecar build failed): the first replay decodes and verifies the
//!    file once and memoizes the stream in memory; repeat replays are
//!    served in [`EVENT_BATCH_CAPACITY`]-sized batches. The memo is
//!    shared by clones of a [`TraceCache`] (so every worker lane of a
//!    sweep hits it) and holds at most its configured stream capacity
//!    ([`DECODED_MEMO_CAPACITY`] by default, `--memo-streams` on the
//!    CLIs), evicting the oldest.
//! 3. **Full decode / record**: the v1 varint stream itself.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use predbranch_isa::Program;
use predbranch_sim::{
    Event, EventSink, Executor, Memory, RunSummary, TraceSink, EVENT_BATCH_CAPACITY,
};

use crate::error::TraceError;
use crate::format::{memory_fingerprint, program_hash, Fnv64, TraceHeader};
use crate::reader::TraceReader;
use crate::segment::{publish_segment, segment_path, TraceMap};
use crate::writer::TraceWriter;

/// Identifies one recorded run: a human-readable label plus a content
/// digest. Equal keys ⇒ identical event streams.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    label: String,
    digest: u64,
}

impl CacheKey {
    /// A key from an explicit label and digest (e.g. a
    /// `predbranch_workloads::TraceId` digest).
    pub fn new(label: impl AsRef<str>, digest: u64) -> Self {
        let label: String = label
            .as_ref()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .take(64)
            .collect();
        CacheKey {
            label: if label.is_empty() {
                "trace".into()
            } else {
                label
            },
            digest,
        }
    }

    /// A fully content-addressed key: hash of the program's binary
    /// encoding, the input memory image, and the instruction budget.
    pub fn for_run(
        label: impl AsRef<str>,
        program: &Program,
        memory: &Memory,
        budget: u64,
    ) -> Self {
        let mut digest = Fnv64::new();
        digest.update_u64(program_hash(program));
        digest.update_u64(memory_fingerprint(memory));
        digest.update_u64(budget);
        CacheKey::new(label, digest.digest())
    }

    /// The key's digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The file name this key maps to.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.pbt", self.label, self.digest)
    }
}

/// A directory of sealed trace files, one per [`CacheKey`].
///
/// # Examples
///
/// ```no_run
/// use predbranch_sim::NullSink;
/// use predbranch_trace::{CacheKey, TraceCache};
///
/// let cache = TraceCache::open("/tmp/pbt-cache").unwrap();
/// let program = predbranch_isa::assemble("halt").unwrap();
/// let memory = predbranch_sim::Memory::new();
/// let key = CacheKey::for_run("demo", &program, &memory, 100);
/// let (summary, hit) = cache
///     .replay_or_record(&key, &program, memory, 100, &mut NullSink)
///     .unwrap();
/// assert!(summary.halted && !hit);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    memo: Arc<Mutex<Vec<MemoEntry>>>,
    memo_capacity: usize,
    memo_counters: Arc<MemoCounters>,
    maps: MapTable,
    serve_counters: Arc<ServeCounters>,
    segments_enabled: bool,
}

/// Open segment maps shared by every clone of a [`TraceCache`], keyed
/// by trace path. Maps are validated once at open and immutable after,
/// so concurrent replays share one `Arc<TraceMap>` per stream.
type MapTable = Arc<Mutex<Vec<(PathBuf, Arc<TraceMap>)>>>;

/// Default number of decoded event streams the memo keeps in memory at
/// once (override with [`TraceCache::with_memo_capacity`]). Each entry
/// holds one trace's full event vector (a few MB for suite-sized runs),
/// so this bounds the memo to tens of MB worst case.
pub const DECODED_MEMO_CAPACITY: usize = 8;

/// Decoded-event memo traffic counters, shared by every clone of a
/// [`TraceCache`] (like the memo itself).
#[derive(Debug, Default)]
struct MemoCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Segment-serving traffic counters, shared by every clone of a
/// [`TraceCache`].
#[derive(Debug, Default)]
struct ServeCounters {
    replays: AtomicU64,
    opens: AtomicU64,
    builds: AtomicU64,
    rejects: AtomicU64,
}

/// A snapshot of segment-serving traffic (see
/// [`TraceCache::serve_stats`]). In a healthy steady-state sweep,
/// `replays` dominates and `rejects` stays 0; a nonzero `rejects`
/// means stale or corrupt sidecars were discarded (and rebuilt on the
/// next decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Replays served zero-copy from an open segment map.
    pub segment_replays: u64,
    /// Segment maps opened and validated this process.
    pub segment_opens: u64,
    /// Sidecars published (at record time or self-healed on a v1
    /// decode).
    pub segment_builds: u64,
    /// Sidecars rejected as stale, corrupt, or wrong-program (the file
    /// is removed and rebuilt on the next full decode).
    pub segment_rejects: u64,
}

/// A snapshot of the decoded-event memo's traffic (see
/// [`TraceCache::memo_stats`]). The memo previously thrashed *silently*
/// once a sweep touched more than its stream capacity in distinct
/// streams — every replay decoded from disk again while looking like a
/// cache hit from the outside. These counters make that visible:
/// a high `evictions` count alongside repeated `misses` for the same
/// sweep is the thrash signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Replays served straight from the decoded memo (no file access).
    pub hits: u64,
    /// Replay requests the memo could not serve — the stream was never
    /// decoded, was evicted, or was memoized for a different program.
    pub misses: u64,
    /// Entries evicted because the memo was at capacity.
    pub evictions: u64,
    /// The memo's configured stream capacity
    /// ([`DECODED_MEMO_CAPACITY`] unless overridden).
    pub capacity: usize,
}

/// One fully decoded, checksum-verified trace held in memory.
#[derive(Debug, Clone)]
struct MemoEntry {
    path: PathBuf,
    program_hash: u64,
    summary: RunSummary,
    events: Arc<[Event]>,
}

/// One sealed trace found by [`TraceCache::scan`].
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The sealed file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Benchmark label from the trace header (`None` if unreadable).
    pub name: Option<String>,
    /// Size of the `.pbtd` segment sidecar, if one exists (not
    /// validated).
    pub segment_bytes: Option<u64>,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceCache {
            dir,
            memo: Arc::new(Mutex::new(Vec::new())),
            memo_capacity: DECODED_MEMO_CAPACITY,
            memo_counters: Arc::new(MemoCounters::default()),
            maps: Arc::new(Mutex::new(Vec::new())),
            serve_counters: Arc::new(ServeCounters::default()),
            segments_enabled: true,
        })
    }

    /// Sets the decoded-event memo's stream capacity (default
    /// [`DECODED_MEMO_CAPACITY`]; `0` disables the memo). Only affects
    /// this handle and clones made *after* the call; set it before
    /// fanning out to worker lanes.
    pub fn with_memo_capacity(mut self, capacity: usize) -> Self {
        self.memo_capacity = capacity;
        self
    }

    /// Enables or disables segment-served replay (default on). With
    /// segments off the cache never consults, builds, or publishes
    /// `.pbtd` sidecars — the pure v1 decode-plus-memo pipeline, kept
    /// as the A/B baseline for `experiments bench` and for tests of
    /// the fallback path.
    pub fn with_segments(mut self, enabled: bool) -> Self {
        self.segments_enabled = enabled;
        self
    }

    /// A snapshot of the decoded-event memo's traffic across this cache
    /// and every clone of it (worker lanes share the counters along
    /// with the memo).
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.memo_counters.hits.load(Ordering::Relaxed),
            misses: self.memo_counters.misses.load(Ordering::Relaxed),
            evictions: self.memo_counters.evictions.load(Ordering::Relaxed),
            capacity: self.memo_capacity,
        }
    }

    /// A snapshot of segment-serving traffic across this cache and
    /// every clone of it.
    pub fn serve_stats(&self) -> ServeStats {
        ServeStats {
            segment_replays: self.serve_counters.replays.load(Ordering::Relaxed),
            segment_opens: self.serve_counters.opens.load(Ordering::Relaxed),
            segment_builds: self.serve_counters.builds.load(Ordering::Relaxed),
            segment_rejects: self.serve_counters.rejects.load(Ordering::Relaxed),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `key`'s trace lives (whether or not it exists yet).
    pub fn path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Whether a sealed trace for `key` is present (not validated).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.path(key).exists()
    }

    /// The cache's fundamental operation: feed `sink` the event stream
    /// for (`program`, `memory`, `budget`) — replaying the cached trace
    /// when one exists and verifies, otherwise executing the program
    /// once while recording it. Returns the run summary and whether it
    /// was a cache hit.
    ///
    /// Replays deliver events in [`EVENT_BATCH_CAPACITY`]-sized batches
    /// through [`EventSink::events`]. Replays prefer the segment
    /// sidecar (opened once per process, then served zero-copy off the
    /// page cache); v1-only entries fall back to a full decode whose
    /// stream is memoized — and, self-healingly, used to build the
    /// missing sidecar so the next replay is segment-served. A sink
    /// only ever sees events from a stream that verified in full.
    ///
    /// A present-but-stale or corrupt file (version bump, interrupted
    /// writer from a crashed process, hash mismatch) is treated as a
    /// miss and atomically re-recorded; a stale or corrupt *sidecar*
    /// is discarded and rebuilt without invalidating the trace.
    pub fn replay_or_record<S: EventSink>(
        &self,
        key: &CacheKey,
        program: &Program,
        memory: Memory,
        budget: u64,
        sink: &mut S,
    ) -> Result<(RunSummary, bool), TraceError> {
        let path = self.path(key);
        let expected_hash = program_hash(program);
        if self.segments_enabled {
            match self.try_segment_replay(&path, expected_hash, sink) {
                Ok(Some(summary)) => return Ok((summary, true)),
                Ok(None) => {} // no usable sidecar; fall through
                Err(e) => return Err(e),
            }
        }
        if let Some(entry) = self.memo_lookup(&path, expected_hash) {
            for chunk in entry.events.chunks(EVENT_BATCH_CAPACITY) {
                sink.events(chunk);
            }
            return Ok((entry.summary, true));
        }
        if path.exists() {
            match self.try_replay(&path, expected_hash, sink) {
                Ok(summary) => return Ok((summary, true)),
                Err(TraceError::Io(e)) => return Err(TraceError::Io(e)),
                Err(_stale) => {} // fall through and re-record
            }
        }
        let header = TraceHeader::new(key.label.as_str(), expected_hash, key.digest, budget);
        let summary = self.record(&path, &header, program, memory, budget, sink)?;
        Ok((summary, false))
    }

    /// Serves one replay from the segment sidecar if a usable one
    /// exists. `Ok(None)` means "no sidecar to serve" (absent, stale,
    /// corrupt, or wrong-program — invalid files are deleted so the
    /// next full decode rebuilds them); only real I/O failures
    /// propagate as errors.
    fn try_segment_replay<S: EventSink>(
        &self,
        path: &Path,
        expected_hash: u64,
        sink: &mut S,
    ) -> Result<Option<RunSummary>, TraceError> {
        let map = match self.map_lookup(path) {
            Some(map) => map,
            None => {
                let seg = segment_path(path);
                if !seg.exists() {
                    return Ok(None);
                }
                // Bind against the sealed trace when it still exists;
                // a sidecar that outlived its trace is still sound to
                // serve (self-checksummed, program hash checked below).
                let opened = if path.exists() {
                    TraceMap::open_bound(path)
                } else {
                    TraceMap::open(&seg)
                };
                match opened {
                    Ok(map) => {
                        self.serve_counters.opens.fetch_add(1, Ordering::Relaxed);
                        let map = Arc::new(map);
                        self.map_insert(path, Arc::clone(&map));
                        map
                    }
                    Err(TraceError::Io(e)) => return Err(TraceError::Io(e)),
                    Err(_invalid) => {
                        let _ = fs::remove_file(&seg);
                        self.serve_counters.rejects.fetch_add(1, Ordering::Relaxed);
                        return Ok(None);
                    }
                }
            }
        };
        if map.header().program_hash != expected_hash {
            self.map_remove(path);
            let _ = fs::remove_file(segment_path(path));
            self.serve_counters.rejects.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        let mut buffer = Vec::with_capacity(EVENT_BATCH_CAPACITY);
        let summary = map.replay(sink, &mut buffer)?;
        self.serve_counters.replays.fetch_add(1, Ordering::Relaxed);
        Ok(Some(summary))
    }

    /// An already-open segment map for `path`, if this process has one.
    fn map_lookup(&self, path: &Path) -> Option<Arc<TraceMap>> {
        let maps = self
            .maps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        maps.iter()
            .find(|(p, _)| p == path)
            .map(|(_, m)| Arc::clone(m))
    }

    fn map_insert(&self, path: &Path, map: Arc<TraceMap>) {
        let mut maps = self
            .maps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !maps.iter().any(|(p, _)| p == path) {
            maps.push((path.to_path_buf(), map));
        }
    }

    fn map_remove(&self, path: &Path) {
        let mut maps = self
            .maps
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        maps.retain(|(p, _)| p != path);
    }

    /// Decodes `path` fully (so corrupt traces deliver *nothing* before
    /// the fall-through re-records them) and feeds the verified stream
    /// to `sink` in batches. The decoded stream then amortizes future
    /// replays: with segments enabled it is published as the missing
    /// sidecar (self-healing a v1-only entry — repeat replays are
    /// segment-served); otherwise it is memoized in memory.
    fn try_replay<S: EventSink>(
        &self,
        path: &Path,
        expected_hash: u64,
        sink: &mut S,
    ) -> Result<RunSummary, TraceError> {
        let reader = TraceReader::open(path)?;
        let stored = reader.header().program_hash;
        if stored != expected_hash {
            return Err(TraceError::ProgramMismatch {
                stored,
                expected: expected_hash,
            });
        }
        let (events, stats) = reader.read_events()?;
        let events: Arc<[Event]> = events.into();
        for chunk in events.chunks(EVENT_BATCH_CAPACITY) {
            sink.events(chunk);
        }
        if !(self.segments_enabled && self.build_segment(path, expected_hash, &stats, &events)) {
            self.memo_insert(MemoEntry {
                path: path.to_path_buf(),
                program_hash: expected_hash,
                summary: stats.summary,
                events,
            });
        }
        Ok(stats.summary)
    }

    /// Best-effort sidecar publication from an already-decoded stream;
    /// returns whether it succeeded. Failures (read-only cache dir,
    /// disk full) leave the v1 entry authoritative — the memo covers
    /// repeat replays instead.
    fn build_segment(
        &self,
        path: &Path,
        program_hash: u64,
        stats: &crate::ReplayStats,
        events: &[Event],
    ) -> bool {
        match publish_segment(path, program_hash, stats.checksum, &stats.summary, events) {
            Ok(_) => {
                self.serve_counters.builds.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// A memoized stream for `path`, dropping the entry if it was
    /// decoded for a different program (then the file path is consulted
    /// again, which re-records on mismatch). Every call moves exactly
    /// one of the hit/miss counters.
    fn memo_lookup(&self, path: &Path, expected_hash: u64) -> Option<MemoEntry> {
        let mut memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = match memo.iter().position(|e| e.path == path) {
            Some(pos) if memo[pos].program_hash != expected_hash => {
                memo.remove(pos);
                None
            }
            Some(pos) => Some(memo[pos].clone()),
            None => None,
        };
        let counter = if found.is_some() {
            &self.memo_counters.hits
        } else {
            &self.memo_counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    fn memo_insert(&self, entry: MemoEntry) {
        if self.memo_capacity == 0 {
            return;
        }
        let mut memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        memo.retain(|e| e.path != entry.path);
        if memo.len() >= self.memo_capacity {
            memo.remove(0); // evict the oldest
            self.memo_counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        memo.push(entry);
    }

    /// Every sealed entry in the cache directory, sorted by file name
    /// (skips temporaries and non-trace files). `name` is the
    /// benchmark label from the trace header, or `None` when the file
    /// is unreadable/corrupt — callers decide whether that matters.
    pub fn scan(&self) -> io::Result<Vec<CacheEntry>> {
        let mut entries = Vec::new();
        for dirent in fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            let file_name = dirent.file_name();
            let file_name = file_name.to_string_lossy();
            if file_name.starts_with('.') || !file_name.ends_with(".pbt") {
                continue;
            }
            let bytes = dirent.metadata()?.len();
            let name = TraceReader::open(&path)
                .ok()
                .map(|reader| reader.header().name.clone());
            let segment_bytes = fs::metadata(segment_path(&path)).ok().map(|m| m.len());
            entries.push(CacheEntry {
                path,
                bytes,
                name,
                segment_bytes,
            });
        }
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    /// Records a run to `path` via write-then-fsync-then-rename, teeing
    /// events into `sink` as they happen. Publication is atomic: any
    /// number of concurrent publishers may race on the same key (from
    /// this or other threads/processes), each writes its own uniquely
    /// named temporary, and whichever rename lands last simply
    /// replaces an identical sealed file — readers never observe a
    /// partial trace.
    ///
    /// With segments enabled the events are also collected in memory
    /// and, once the trace is sealed, published as its `.pbtd` sidecar
    /// (best effort) so the very first replay is already segment-served.
    fn record<S: EventSink>(
        &self,
        path: &Path,
        header: &TraceHeader,
        program: &Program,
        memory: Memory,
        budget: u64,
        sink: &mut S,
    ) -> Result<RunSummary, TraceError> {
        let tmp = self.dir.join(format!(
            ".{}.tmp.{}.{}",
            header.name,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let mut collector = TraceSink::new();
        let result = (|| {
            let mut writer = TraceWriter::create(&tmp, header)?;
            let summary = if self.segments_enabled {
                let mut tee = ((&mut *sink, &mut collector), &mut writer);
                Executor::new(program, memory).run(&mut tee, budget)
            } else {
                let mut tee = (&mut *sink, &mut writer);
                Executor::new(program, memory).run(&mut tee, budget)
            };
            let mut file = writer
                .finish(&summary)?
                .into_inner()
                .map_err(|e| io::Error::other(format!("flush failed: {e}")))?;
            file.flush()?;
            // fsync before publishing: a crash after the rename must not
            // leave a sealed name pointing at unwritten blocks
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, path)?;
            Ok(summary)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        let summary = result.map_err(TraceError::Io)?;
        if self.segments_enabled {
            // A re-recorded trace invalidates whatever map/sidecar the
            // old generation had.
            self.map_remove(path);
            if let Ok(tail) = crate::segment::trace_tail_checksum(path) {
                if publish_segment(
                    path,
                    header.program_hash,
                    tail,
                    &summary,
                    collector.events(),
                )
                .is_ok()
                {
                    self.serve_counters.builds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::assemble;
    use predbranch_sim::TraceSink;

    fn toy_program() -> Program {
        assemble(
            r#"
                mov r1 = 5
            loop:
                cmp.gt p1, p2 = r1, 0
                (p1) sub r1 = r1, 1
                (p1) br loop
                halt
            "#,
        )
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pbt-cache-test-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_records_then_hit_replays_identically() {
        let dir = tmp_dir("hit");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);

        let mut first = TraceSink::new();
        let (s1, hit1) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut first)
            .unwrap();
        assert!(!hit1);
        assert!(cache.contains(&key));

        let mut second = TraceSink::new();
        let (s2, hit2) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut second)
            .unwrap();
        assert!(hit2);
        assert_eq!(s1, s2);
        assert_eq!(first.events(), second.events());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_re_recorded_not_fatal() {
        let dir = tmp_dir("corrupt");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();

        // truncate the sealed file to simulate a torn write
        let path = cache.path(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let mut sink = TraceSink::new();
        let (summary, hit) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut sink)
            .unwrap();
        assert!(!hit, "corrupt file must not count as a hit");
        assert!(summary.halted);
        // and the re-recorded file now verifies
        TraceReader::open(&path).unwrap().verify().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_inputs_get_different_keys() {
        let program = toy_program();
        let mut mem = Memory::new();
        mem.store(1_000, 7);
        let a = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        let b = CacheKey::for_run("toy", &program, &mem, 1_000);
        let c = CacheKey::for_run("toy", &program, &Memory::new(), 2_000);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(b.digest(), c.digest());
    }

    #[test]
    fn labels_are_sanitized_for_filenames() {
        let key = CacheKey::new("a/b c!", 7);
        assert_eq!(key.file_name(), "a_b_c_-0000000000000007.pbt");
    }

    #[test]
    fn memo_serves_repeat_replays_without_the_file() {
        let dir = tmp_dir("memo");
        // segments off: this test pins the v1 decode-memo fallback path
        let cache = TraceCache::open(&dir).unwrap().with_segments(false);
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();

        // first replay decodes the file and memoizes the stream
        let mut first = TraceSink::new();
        let (s1, hit1) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut first)
            .unwrap();
        assert!(hit1);

        // delete the sealed file: a further replay must be served from
        // the memo — identical events, no disk access, still a hit.
        // A clone shares the memo, as sweep worker lanes do.
        fs::remove_file(cache.path(&key)).unwrap();
        let clone = cache.clone();
        let mut second = TraceSink::new();
        let (s2, hit2) = clone
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut second)
            .unwrap();
        assert!(hit2, "memoized stream must count as a replay hit");
        assert_eq!(s1, s2);
        assert_eq!(first.events(), second.events());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_is_bounded_and_evicts_oldest() {
        let dir = tmp_dir("evict");
        let cache = TraceCache::open(&dir).unwrap().with_segments(false);
        let program = toy_program();
        // record + replay more distinct keys than the memo holds
        let keys: Vec<CacheKey> = (0..DECODED_MEMO_CAPACITY as u64 + 3)
            .map(|budget_extra| {
                CacheKey::for_run("toy", &program, &Memory::new(), 1_000 + budget_extra)
            })
            .collect();
        for (i, key) in keys.iter().enumerate() {
            let budget = 1_000 + i as u64;
            for _ in 0..2 {
                cache
                    .replay_or_record(
                        key,
                        &program,
                        Memory::new(),
                        budget,
                        &mut predbranch_sim::NullSink,
                    )
                    .unwrap();
            }
        }
        let memo = cache.memo.lock().unwrap();
        assert_eq!(memo.len(), DECODED_MEMO_CAPACITY);
        // the oldest entries were evicted, the newest survive
        let newest = cache.path(keys.last().unwrap());
        assert!(memo.iter().any(|e| e.path == newest));
        let oldest = cache.path(&keys[0]);
        assert!(!memo.iter().any(|e| e.path == oldest));
        drop(memo);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_counters_expose_thrash_at_the_stream_bound() {
        let dir = tmp_dir("counters");
        let cache = TraceCache::open(&dir).unwrap().with_segments(false);
        let program = toy_program();
        let fresh = cache.memo_stats();
        assert_eq!((fresh.hits, fresh.misses, fresh.evictions), (0, 0, 0));

        // one stream, recorded then replayed twice: the record and the
        // first (decode) replay both miss, the repeat replay hits
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        for _ in 0..3 {
            cache
                .replay_or_record(
                    &key,
                    &program,
                    Memory::new(),
                    1_000,
                    &mut predbranch_sim::NullSink,
                )
                .unwrap();
        }
        let stats = cache.memo_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
        assert_eq!(stats.capacity, DECODED_MEMO_CAPACITY);

        // clones share the counters, like worker lanes share the memo
        let clone = cache.clone();
        clone
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();
        assert_eq!(cache.memo_stats().hits, 2);

        // stream N+1 pushes the memo past its bound: evictions move,
        // which is the signal that used to be silent
        for extra in 1..=DECODED_MEMO_CAPACITY as u64 + 1 {
            let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000 + extra);
            for _ in 0..2 {
                cache
                    .replay_or_record(
                        &key,
                        &program,
                        Memory::new(),
                        1_000 + extra,
                        &mut predbranch_sim::NullSink,
                    )
                    .unwrap();
            }
        }
        let stats = cache.memo_stats();
        assert!(stats.evictions > 0, "{stats:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = tmp_dir("clean");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_publishes_a_sidecar_and_replays_are_segment_served() {
        let dir = tmp_dir("segment");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);

        let mut recorded = TraceSink::new();
        cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut recorded)
            .unwrap();
        assert!(crate::segment::segment_path(&cache.path(&key)).exists());
        assert_eq!(cache.serve_stats().segment_builds, 1);

        for _ in 0..2 {
            let mut sink = TraceSink::new();
            let (_, hit) = cache
                .replay_or_record(&key, &program, Memory::new(), 1_000, &mut sink)
                .unwrap();
            assert!(hit);
            assert_eq!(sink.events(), recorded.events());
        }
        let stats = cache.serve_stats();
        assert_eq!(stats.segment_replays, 2);
        assert_eq!(stats.segment_opens, 1, "map opens once, serves many");
        // the memo was never consulted: segments short-circuit it
        assert_eq!(cache.memo_stats().hits + cache.memo_stats().misses, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_only_entry_self_heals_a_sidecar() {
        let dir = tmp_dir("selfheal");
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        // record through a segments-off handle: a pure v1 cache entry
        TraceCache::open(&dir)
            .unwrap()
            .with_segments(false)
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();

        let cache = TraceCache::open(&dir).unwrap();
        assert!(!crate::segment::segment_path(&cache.path(&key)).exists());
        // first replay falls back to a full decode and builds the sidecar
        let mut first = TraceSink::new();
        let (_, hit) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut first)
            .unwrap();
        assert!(hit);
        assert_eq!(cache.serve_stats().segment_builds, 1);
        assert!(crate::segment::segment_path(&cache.path(&key)).exists());
        // repeat replays are segment-served
        let mut second = TraceSink::new();
        cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut second)
            .unwrap();
        assert_eq!(cache.serve_stats().segment_replays, 1);
        assert_eq!(first.events(), second.events());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sidecar_is_rejected_then_rebuilt() {
        let dir = tmp_dir("sidecar-corrupt");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        let mut recorded = TraceSink::new();
        cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut recorded)
            .unwrap();

        let seg = crate::segment::segment_path(&cache.path(&key));
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&seg, &bytes).unwrap();

        // a fresh handle (no open map) rejects the corrupt sidecar,
        // serves the replay from a full v1 decode, and rebuilds it
        let fresh = TraceCache::open(&dir).unwrap();
        let mut sink = TraceSink::new();
        let (_, hit) = fresh
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut sink)
            .unwrap();
        assert!(hit, "the v1 trace is intact: still a replay hit");
        assert_eq!(sink.events(), recorded.events());
        let stats = fresh.serve_stats();
        assert_eq!(stats.segment_rejects, 1);
        assert_eq!(stats.segment_builds, 1);
        // and the rebuilt sidecar serves the next replay
        fresh
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();
        assert_eq!(fresh.serve_stats().segment_replays, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_capacity_is_configurable() {
        let dir = tmp_dir("memo-cap");
        let cache = TraceCache::open(&dir)
            .unwrap()
            .with_segments(false)
            .with_memo_capacity(2);
        assert_eq!(cache.memo_stats().capacity, 2);
        let program = toy_program();
        for extra in 0..3u64 {
            let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000 + extra);
            for _ in 0..2 {
                cache
                    .replay_or_record(
                        &key,
                        &program,
                        Memory::new(),
                        1_000 + extra,
                        &mut predbranch_sim::NullSink,
                    )
                    .unwrap();
            }
        }
        assert_eq!(cache.memo.lock().unwrap().len(), 2);
        assert!(cache.memo_stats().evictions > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Content-addressed on-disk trace cache.
//!
//! Experiment sweeps evaluate many predictor configurations over the same
//! (binary, input) pairs; the cache lets each pair be executed through
//! the functional simulator exactly once and replayed thereafter. Keys
//! are content hashes (program encoding + input memory + budget, or an
//! explicit benchmark/compile-options/seed identity), so a stale file
//! can never be replayed for the wrong run. Writes go to a temporary
//! file in the cache directory and are published with an atomic rename —
//! concurrent runs may duplicate work but never observe a partial trace.
//!
//! On top of the on-disk layer sits a small in-process **decoded-event
//! memo**: the first replay of a trace decodes and verifies the file
//! once, and every further replay of the same trace (the common case —
//! a sweep runs many predictor configs per recorded run) is served
//! straight from memory in [`EVENT_BATCH_CAPACITY`]-sized batches,
//! skipping file open, decode, and checksum entirely. The memo is
//! shared by clones of a [`TraceCache`] (so every worker lane of a
//! sweep hits it) and holds at most [`DECODED_MEMO_CAPACITY`] streams,
//! evicting the oldest.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use predbranch_isa::Program;
use predbranch_sim::{Event, EventSink, Executor, Memory, RunSummary, EVENT_BATCH_CAPACITY};

use crate::error::TraceError;
use crate::format::{memory_fingerprint, program_hash, Fnv64, TraceHeader};
use crate::reader::TraceReader;
use crate::writer::TraceWriter;

/// Identifies one recorded run: a human-readable label plus a content
/// digest. Equal keys ⇒ identical event streams.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    label: String,
    digest: u64,
}

impl CacheKey {
    /// A key from an explicit label and digest (e.g. a
    /// `predbranch_workloads::TraceId` digest).
    pub fn new(label: impl AsRef<str>, digest: u64) -> Self {
        let label: String = label
            .as_ref()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .take(64)
            .collect();
        CacheKey {
            label: if label.is_empty() {
                "trace".into()
            } else {
                label
            },
            digest,
        }
    }

    /// A fully content-addressed key: hash of the program's binary
    /// encoding, the input memory image, and the instruction budget.
    pub fn for_run(
        label: impl AsRef<str>,
        program: &Program,
        memory: &Memory,
        budget: u64,
    ) -> Self {
        let mut digest = Fnv64::new();
        digest.update_u64(program_hash(program));
        digest.update_u64(memory_fingerprint(memory));
        digest.update_u64(budget);
        CacheKey::new(label, digest.digest())
    }

    /// The key's digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The file name this key maps to.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.pbt", self.label, self.digest)
    }
}

/// A directory of sealed trace files, one per [`CacheKey`].
///
/// # Examples
///
/// ```no_run
/// use predbranch_sim::NullSink;
/// use predbranch_trace::{CacheKey, TraceCache};
///
/// let cache = TraceCache::open("/tmp/pbt-cache").unwrap();
/// let program = predbranch_isa::assemble("halt").unwrap();
/// let memory = predbranch_sim::Memory::new();
/// let key = CacheKey::for_run("demo", &program, &memory, 100);
/// let (summary, hit) = cache
///     .replay_or_record(&key, &program, memory, 100, &mut NullSink)
///     .unwrap();
/// assert!(summary.halted && !hit);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    memo: Arc<Mutex<Vec<MemoEntry>>>,
    memo_counters: Arc<MemoCounters>,
}

/// Decoded event streams the memo keeps in memory at once. Each entry
/// holds one trace's full event vector (a few MB for suite-sized runs),
/// so this bounds the memo to tens of MB worst case.
pub const DECODED_MEMO_CAPACITY: usize = 8;

/// Decoded-event memo traffic counters, shared by every clone of a
/// [`TraceCache`] (like the memo itself).
#[derive(Debug, Default)]
struct MemoCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A snapshot of the decoded-event memo's traffic (see
/// [`TraceCache::memo_stats`]). The memo previously thrashed *silently*
/// once a sweep touched more than [`DECODED_MEMO_CAPACITY`] distinct
/// streams — every replay decoded from disk again while looking like a
/// cache hit from the outside. These counters make that visible:
/// a high `evictions` count alongside repeated `misses` for the same
/// sweep is the thrash signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Replays served straight from the decoded memo (no file access).
    pub hits: u64,
    /// Replay requests the memo could not serve — the stream was never
    /// decoded, was evicted, or was memoized for a different program.
    pub misses: u64,
    /// Entries evicted because the memo was at capacity.
    pub evictions: u64,
    /// The memo's stream capacity ([`DECODED_MEMO_CAPACITY`]).
    pub capacity: usize,
}

/// One fully decoded, checksum-verified trace held in memory.
#[derive(Debug, Clone)]
struct MemoEntry {
    path: PathBuf,
    program_hash: u64,
    summary: RunSummary,
    events: Arc<[Event]>,
}

/// One sealed trace found by [`TraceCache::scan`].
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The sealed file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Benchmark label from the trace header (`None` if unreadable).
    pub name: Option<String>,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TraceCache {
            dir,
            memo: Arc::new(Mutex::new(Vec::new())),
            memo_counters: Arc::new(MemoCounters::default()),
        })
    }

    /// A snapshot of the decoded-event memo's traffic across this cache
    /// and every clone of it (worker lanes share the counters along
    /// with the memo).
    pub fn memo_stats(&self) -> MemoStats {
        MemoStats {
            hits: self.memo_counters.hits.load(Ordering::Relaxed),
            misses: self.memo_counters.misses.load(Ordering::Relaxed),
            evictions: self.memo_counters.evictions.load(Ordering::Relaxed),
            capacity: DECODED_MEMO_CAPACITY,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where `key`'s trace lives (whether or not it exists yet).
    pub fn path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Whether a sealed trace for `key` is present (not validated).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.path(key).exists()
    }

    /// The cache's fundamental operation: feed `sink` the event stream
    /// for (`program`, `memory`, `budget`) — replaying the cached trace
    /// when one exists and verifies, otherwise executing the program
    /// once while recording it. Returns the run summary and whether it
    /// was a cache hit.
    ///
    /// Replays deliver events in [`EVENT_BATCH_CAPACITY`]-sized batches
    /// through [`EventSink::events`]. The first replay of a trace
    /// decodes and verifies the file once and memoizes the stream;
    /// repeat replays (every further predictor config over the same
    /// recorded run) are served from memory without touching the file.
    /// A sink only ever sees events from a stream that verified in
    /// full.
    ///
    /// A present-but-stale or corrupt file (version bump, interrupted
    /// writer from a crashed process, hash mismatch) is treated as a
    /// miss and atomically re-recorded.
    pub fn replay_or_record<S: EventSink>(
        &self,
        key: &CacheKey,
        program: &Program,
        memory: Memory,
        budget: u64,
        sink: &mut S,
    ) -> Result<(RunSummary, bool), TraceError> {
        let path = self.path(key);
        let expected_hash = program_hash(program);
        if let Some(entry) = self.memo_lookup(&path, expected_hash) {
            for chunk in entry.events.chunks(EVENT_BATCH_CAPACITY) {
                sink.events(chunk);
            }
            return Ok((entry.summary, true));
        }
        if path.exists() {
            match self.try_replay(&path, expected_hash, sink) {
                Ok(summary) => return Ok((summary, true)),
                Err(TraceError::Io(e)) => return Err(TraceError::Io(e)),
                Err(_stale) => {} // fall through and re-record
            }
        }
        let header = TraceHeader::new(key.label.as_str(), expected_hash, key.digest, budget);
        let summary = self.record(&path, &header, program, memory, budget, sink)?;
        Ok((summary, false))
    }

    /// Decodes `path` fully (so corrupt traces deliver *nothing* before
    /// the fall-through re-records them), feeds the verified stream to
    /// `sink` in batches, and memoizes it for repeat replays.
    fn try_replay<S: EventSink>(
        &self,
        path: &Path,
        expected_hash: u64,
        sink: &mut S,
    ) -> Result<RunSummary, TraceError> {
        let reader = TraceReader::open(path)?;
        let stored = reader.header().program_hash;
        if stored != expected_hash {
            return Err(TraceError::ProgramMismatch {
                stored,
                expected: expected_hash,
            });
        }
        let (events, stats) = reader.read_events()?;
        let events: Arc<[Event]> = events.into();
        for chunk in events.chunks(EVENT_BATCH_CAPACITY) {
            sink.events(chunk);
        }
        self.memo_insert(MemoEntry {
            path: path.to_path_buf(),
            program_hash: expected_hash,
            summary: stats.summary,
            events,
        });
        Ok(stats.summary)
    }

    /// A memoized stream for `path`, dropping the entry if it was
    /// decoded for a different program (then the file path is consulted
    /// again, which re-records on mismatch). Every call moves exactly
    /// one of the hit/miss counters.
    fn memo_lookup(&self, path: &Path, expected_hash: u64) -> Option<MemoEntry> {
        let mut memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let found = match memo.iter().position(|e| e.path == path) {
            Some(pos) if memo[pos].program_hash != expected_hash => {
                memo.remove(pos);
                None
            }
            Some(pos) => Some(memo[pos].clone()),
            None => None,
        };
        let counter = if found.is_some() {
            &self.memo_counters.hits
        } else {
            &self.memo_counters.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    fn memo_insert(&self, entry: MemoEntry) {
        let mut memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        memo.retain(|e| e.path != entry.path);
        if memo.len() >= DECODED_MEMO_CAPACITY {
            memo.remove(0); // evict the oldest
            self.memo_counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        memo.push(entry);
    }

    /// Every sealed entry in the cache directory, sorted by file name
    /// (skips temporaries and non-trace files). `name` is the
    /// benchmark label from the trace header, or `None` when the file
    /// is unreadable/corrupt — callers decide whether that matters.
    pub fn scan(&self) -> io::Result<Vec<CacheEntry>> {
        let mut entries = Vec::new();
        for dirent in fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            let file_name = dirent.file_name();
            let file_name = file_name.to_string_lossy();
            if file_name.starts_with('.') || !file_name.ends_with(".pbt") {
                continue;
            }
            let bytes = dirent.metadata()?.len();
            let name = TraceReader::open(&path)
                .ok()
                .map(|reader| reader.header().name.clone());
            entries.push(CacheEntry { path, bytes, name });
        }
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    /// Records a run to `path` via write-then-fsync-then-rename, teeing
    /// events into `sink` as they happen. Publication is atomic: any
    /// number of concurrent publishers may race on the same key (from
    /// this or other threads/processes), each writes its own uniquely
    /// named temporary, and whichever rename lands last simply
    /// replaces an identical sealed file — readers never observe a
    /// partial trace.
    fn record<S: EventSink>(
        &self,
        path: &Path,
        header: &TraceHeader,
        program: &Program,
        memory: Memory,
        budget: u64,
        sink: &mut S,
    ) -> Result<RunSummary, TraceError> {
        let tmp = self.dir.join(format!(
            ".{}.tmp.{}.{}",
            header.name,
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let mut writer = TraceWriter::create(&tmp, header)?;
            let summary = {
                let mut tee = (&mut *sink, &mut writer);
                Executor::new(program, memory).run(&mut tee, budget)
            };
            let mut file = writer
                .finish(&summary)?
                .into_inner()
                .map_err(|e| io::Error::other(format!("flush failed: {e}")))?;
            file.flush()?;
            // fsync before publishing: a crash after the rename must not
            // leave a sealed name pointing at unwritten blocks
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, path)?;
            Ok(summary)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result.map_err(TraceError::Io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::assemble;
    use predbranch_sim::TraceSink;

    fn toy_program() -> Program {
        assemble(
            r#"
                mov r1 = 5
            loop:
                cmp.gt p1, p2 = r1, 0
                (p1) sub r1 = r1, 1
                (p1) br loop
                halt
            "#,
        )
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pbt-cache-test-{tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_records_then_hit_replays_identically() {
        let dir = tmp_dir("hit");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);

        let mut first = TraceSink::new();
        let (s1, hit1) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut first)
            .unwrap();
        assert!(!hit1);
        assert!(cache.contains(&key));

        let mut second = TraceSink::new();
        let (s2, hit2) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut second)
            .unwrap();
        assert!(hit2);
        assert_eq!(s1, s2);
        assert_eq!(first.events(), second.events());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_re_recorded_not_fatal() {
        let dir = tmp_dir("corrupt");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();

        // truncate the sealed file to simulate a torn write
        let path = cache.path(&key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let mut sink = TraceSink::new();
        let (summary, hit) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut sink)
            .unwrap();
        assert!(!hit, "corrupt file must not count as a hit");
        assert!(summary.halted);
        // and the re-recorded file now verifies
        TraceReader::open(&path).unwrap().verify().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_inputs_get_different_keys() {
        let program = toy_program();
        let mut mem = Memory::new();
        mem.store(1_000, 7);
        let a = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        let b = CacheKey::for_run("toy", &program, &mem, 1_000);
        let c = CacheKey::for_run("toy", &program, &Memory::new(), 2_000);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(b.digest(), c.digest());
    }

    #[test]
    fn labels_are_sanitized_for_filenames() {
        let key = CacheKey::new("a/b c!", 7);
        assert_eq!(key.file_name(), "a_b_c_-0000000000000007.pbt");
    }

    #[test]
    fn memo_serves_repeat_replays_without_the_file() {
        let dir = tmp_dir("memo");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();

        // first replay decodes the file and memoizes the stream
        let mut first = TraceSink::new();
        let (s1, hit1) = cache
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut first)
            .unwrap();
        assert!(hit1);

        // delete the sealed file: a further replay must be served from
        // the memo — identical events, no disk access, still a hit.
        // A clone shares the memo, as sweep worker lanes do.
        fs::remove_file(cache.path(&key)).unwrap();
        let clone = cache.clone();
        let mut second = TraceSink::new();
        let (s2, hit2) = clone
            .replay_or_record(&key, &program, Memory::new(), 1_000, &mut second)
            .unwrap();
        assert!(hit2, "memoized stream must count as a replay hit");
        assert_eq!(s1, s2);
        assert_eq!(first.events(), second.events());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_is_bounded_and_evicts_oldest() {
        let dir = tmp_dir("evict");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        // record + replay more distinct keys than the memo holds
        let keys: Vec<CacheKey> = (0..DECODED_MEMO_CAPACITY as u64 + 3)
            .map(|budget_extra| {
                CacheKey::for_run("toy", &program, &Memory::new(), 1_000 + budget_extra)
            })
            .collect();
        for (i, key) in keys.iter().enumerate() {
            let budget = 1_000 + i as u64;
            for _ in 0..2 {
                cache
                    .replay_or_record(
                        key,
                        &program,
                        Memory::new(),
                        budget,
                        &mut predbranch_sim::NullSink,
                    )
                    .unwrap();
            }
        }
        let memo = cache.memo.lock().unwrap();
        assert_eq!(memo.len(), DECODED_MEMO_CAPACITY);
        // the oldest entries were evicted, the newest survive
        let newest = cache.path(keys.last().unwrap());
        assert!(memo.iter().any(|e| e.path == newest));
        let oldest = cache.path(&keys[0]);
        assert!(!memo.iter().any(|e| e.path == oldest));
        drop(memo);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_counters_expose_thrash_at_the_stream_bound() {
        let dir = tmp_dir("counters");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let fresh = cache.memo_stats();
        assert_eq!((fresh.hits, fresh.misses, fresh.evictions), (0, 0, 0));

        // one stream, recorded then replayed twice: the record and the
        // first (decode) replay both miss, the repeat replay hits
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        for _ in 0..3 {
            cache
                .replay_or_record(
                    &key,
                    &program,
                    Memory::new(),
                    1_000,
                    &mut predbranch_sim::NullSink,
                )
                .unwrap();
        }
        let stats = cache.memo_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 2, 0));
        assert_eq!(stats.capacity, DECODED_MEMO_CAPACITY);

        // clones share the counters, like worker lanes share the memo
        let clone = cache.clone();
        clone
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();
        assert_eq!(cache.memo_stats().hits, 2);

        // stream N+1 pushes the memo past its bound: evictions move,
        // which is the signal that used to be silent
        for extra in 1..=DECODED_MEMO_CAPACITY as u64 + 1 {
            let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000 + extra);
            for _ in 0..2 {
                cache
                    .replay_or_record(
                        &key,
                        &program,
                        Memory::new(),
                        1_000 + extra,
                        &mut predbranch_sim::NullSink,
                    )
                    .unwrap();
            }
        }
        let stats = cache.memo_stats();
        assert!(stats.evictions > 0, "{stats:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = tmp_dir("clean");
        let cache = TraceCache::open(&dir).unwrap();
        let program = toy_program();
        let key = CacheKey::for_run("toy", &program, &Memory::new(), 1_000);
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                1_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Typed errors for trace reading and writing.

use std::fmt;
use std::io;

/// Everything that can go wrong reading, verifying, or recording a
/// trace file.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure (opening, renaming, flushing, ...).
    Io(io::Error),
    /// The file does not start with the `PBTR` magic.
    BadMagic([u8; 4]),
    /// The file's format version is not one this reader understands.
    UnsupportedVersion(u16),
    /// The file ended in the middle of the header, an event record, or
    /// the footer.
    Truncated,
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the bytes actually read.
        computed: u64,
    },
    /// An event record carried an unknown tag byte.
    BadEventTag(u8),
    /// An event record referenced an invalid predicate register.
    BadPredReg(u8),
    /// A varint field overflowed its target width.
    FieldOverflow(&'static str),
    /// The footer's event count disagrees with the records read.
    CountMismatch {
        /// Count stored in the footer.
        stored: u64,
        /// Events actually decoded.
        decoded: u64,
    },
    /// The benchmark name in the header is not valid UTF-8.
    BadName,
    /// The trace belongs to a different program than expected (hash
    /// mismatch against the caller's program).
    ProgramMismatch {
        /// Hash recorded in the trace header.
        stored: u64,
        /// Hash of the program the caller wanted to replay.
        expected: u64,
    },
    /// A segment sidecar is structurally invalid (bad magic, layout
    /// canary, size, or header field).
    BadSegment(&'static str),
    /// A segment sidecar was built from a different generation of its
    /// trace (source-checksum binding failed); rebuild it.
    SegmentStale {
        /// Source checksum recorded in the segment header.
        segment: u64,
        /// Trailing checksum of the sealed trace on disk.
        trace: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::Truncated => write!(f, "trace file is truncated"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch (file says {stored:#018x}, contents hash to {computed:#018x})"
            ),
            TraceError::BadEventTag(t) => write!(f, "unknown event tag {t:#04x}"),
            TraceError::BadPredReg(p) => write!(f, "invalid predicate register p{p}"),
            TraceError::FieldOverflow(field) => {
                write!(f, "event field `{field}` overflows its width")
            }
            TraceError::CountMismatch { stored, decoded } => write!(
                f,
                "event count mismatch (footer says {stored}, decoded {decoded})"
            ),
            TraceError::BadName => write!(f, "trace header name is not valid UTF-8"),
            TraceError::ProgramMismatch { stored, expected } => write!(
                f,
                "trace was recorded from a different program \
                 (header {stored:#018x}, expected {expected:#018x})"
            ),
            TraceError::BadSegment(reason) => {
                write!(f, "segment sidecar is invalid: {reason}")
            }
            TraceError::SegmentStale { segment, trace } => write!(
                f,
                "segment sidecar is stale (built from trace {segment:#018x}, \
                 sealed trace is {trace:#018x})"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_maps_to_truncated() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(TraceError::from(eof), TraceError::Truncated));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(TraceError::from(other), TraceError::Io(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = TraceError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(TraceError::UnsupportedVersion(9).to_string().contains('9'));
    }
}

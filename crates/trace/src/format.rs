//! The on-disk trace format: layout constants, header, event records,
//! footer, and the stable content hashes used for cache keys.
//!
//! # Layout (version 1)
//!
//! ```text
//! magic      4 bytes   "PBTR"
//! version    u16 LE
//! header     program_hash u64 LE · seed u64 LE · budget u64 LE
//!            · name_len u16 LE · name bytes (UTF-8)
//! events     tagged records (see below), delta-encoded indices
//! end        tag byte 0xE0
//! footer     RunSummary fields (varints + halted byte)
//!            · event_count varint
//! checksum   u64 LE — FNV-1a of every preceding byte
//! ```
//!
//! Event records:
//!
//! ```text
//! 0x01 Branch    Δindex zigzag-varint · pc varint · target varint
//!                · guard u8 · flags u8 (taken/conditional/has-region)
//!                · [region varint]
//! 0x02 PredWrite Δindex zigzag-varint · pc varint · preg u8
//!                · guard u8 · flags u8 (value/guard-value)
//! ```
//!
//! Indices are stored as zigzag deltas against the previous record, so
//! the common case (events a few instructions apart) costs one byte and
//! arbitrary sequences — including non-monotone test streams — still
//! round-trip exactly.

use std::io::{self, Read, Write};

use predbranch_isa::{encode_program, PredReg, Program};
use predbranch_sim::{BranchEvent, Event, Memory, PredWriteEvent, RunSummary};

use crate::error::TraceError;
use crate::varint;

/// File magic: the first four bytes of every trace.
pub const MAGIC: [u8; 4] = *b"PBTR";

/// Current format version. Readers reject anything else.
pub const FORMAT_VERSION: u16 = 1;

/// Tag byte of a [`BranchEvent`] record.
pub(crate) const TAG_BRANCH: u8 = 0x01;

/// Tag byte of a [`PredWriteEvent`] record.
pub(crate) const TAG_PRED_WRITE: u8 = 0x02;

/// Tag byte terminating the event section.
pub(crate) const TAG_END: u8 = 0xE0;

pub(crate) const FLAG_TAKEN: u8 = 1 << 0;
pub(crate) const FLAG_CONDITIONAL: u8 = 1 << 1;
pub(crate) const FLAG_HAS_REGION: u8 = 1 << 2;
pub(crate) const FLAG_VALUE: u8 = 1 << 0;
pub(crate) const FLAG_GUARD_VALUE: u8 = 1 << 1;

/// Everything identifying what a trace was recorded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Stable hash of the traced program (see [`program_hash`]).
    pub program_hash: u64,
    /// Input seed the memory image was generated from (0 when unknown).
    pub seed: u64,
    /// Instruction budget the recording run used.
    pub budget: u64,
    /// Benchmark (or other source) name; informational.
    pub name: String,
}

impl TraceHeader {
    /// A header for `name` with the given provenance.
    pub fn new(name: impl Into<String>, program_hash: u64, seed: u64, budget: u64) -> Self {
        TraceHeader {
            program_hash,
            seed,
            budget,
            name: name.into(),
        }
    }

    pub(crate) fn write_to<W: Write + ?Sized>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&self.program_hash.to_le_bytes())?;
        out.write_all(&self.seed.to_le_bytes())?;
        out.write_all(&self.budget.to_le_bytes())?;
        let name = self.name.as_bytes();
        let len = u16::try_from(name.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "trace name longer than 64 KiB")
        })?;
        out.write_all(&len.to_le_bytes())?;
        out.write_all(name)
    }

    pub(crate) fn read_from<R: Read + ?Sized>(input: &mut R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = read_u16(input)?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let program_hash = read_u64_le(input)?;
        let seed = read_u64_le(input)?;
        let budget = read_u64_le(input)?;
        let name_len = read_u16(input)? as usize;
        let mut name = vec![0u8; name_len];
        input.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| TraceError::BadName)?;
        Ok(TraceHeader {
            program_hash,
            seed,
            budget,
            name,
        })
    }
}

fn read_u16<R: Read + ?Sized>(input: &mut R) -> Result<u16, TraceError> {
    let mut b = [0u8; 2];
    input.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64_le<R: Read + ?Sized>(input: &mut R) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    input.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Encodes one event against the previous record's index.
pub(crate) fn write_event<W: Write + ?Sized>(
    out: &mut W,
    event: &Event,
    prev_index: u64,
) -> io::Result<u64> {
    match event {
        Event::Branch(b) => {
            out.write_all(&[TAG_BRANCH])?;
            let delta = b.index.wrapping_sub(prev_index) as i64;
            varint::write_u64(out, varint::zigzag(delta))?;
            varint::write_u64(out, b.pc as u64)?;
            varint::write_u64(out, b.target as u64)?;
            let mut flags = 0u8;
            if b.taken {
                flags |= FLAG_TAKEN;
            }
            if b.conditional {
                flags |= FLAG_CONDITIONAL;
            }
            if b.region.is_some() {
                flags |= FLAG_HAS_REGION;
            }
            out.write_all(&[b.guard.index(), flags])?;
            if let Some(region) = b.region {
                varint::write_u64(out, region as u64)?;
            }
            Ok(b.index)
        }
        Event::PredWrite(p) => {
            out.write_all(&[TAG_PRED_WRITE])?;
            let delta = p.index.wrapping_sub(prev_index) as i64;
            varint::write_u64(out, varint::zigzag(delta))?;
            varint::write_u64(out, p.pc as u64)?;
            let mut flags = 0u8;
            if p.value {
                flags |= FLAG_VALUE;
            }
            if p.guard_value {
                flags |= FLAG_GUARD_VALUE;
            }
            out.write_all(&[p.preg.index(), p.guard.index(), flags])?;
            Ok(p.index)
        }
    }
}

/// Decodes the record following an already-consumed tag byte.
pub(crate) fn read_event<R: Read + ?Sized>(
    input: &mut R,
    tag: u8,
    prev_index: u64,
) -> Result<Event, TraceError> {
    let delta = varint::unzigzag(varint::read_u64(input)?);
    let index = prev_index.wrapping_add(delta as u64);
    match tag {
        TAG_BRANCH => {
            let pc = read_u32_field(input, "pc")?;
            let target = read_u32_field(input, "target")?;
            let mut rest = [0u8; 2];
            input.read_exact(&mut rest)?;
            let [guard, flags] = rest;
            let guard = pred_reg(guard)?;
            let region = if flags & FLAG_HAS_REGION != 0 {
                let r = varint::read_u64(input)?;
                Some(u16::try_from(r).map_err(|_| TraceError::FieldOverflow("region"))?)
            } else {
                None
            };
            Ok(Event::Branch(BranchEvent {
                pc,
                target,
                guard,
                taken: flags & FLAG_TAKEN != 0,
                conditional: flags & FLAG_CONDITIONAL != 0,
                region,
                index,
            }))
        }
        TAG_PRED_WRITE => {
            let pc = read_u32_field(input, "pc")?;
            let mut rest = [0u8; 3];
            input.read_exact(&mut rest)?;
            let [preg, guard, flags] = rest;
            Ok(Event::PredWrite(PredWriteEvent {
                pc,
                preg: pred_reg(preg)?,
                value: flags & FLAG_VALUE != 0,
                index,
                guard: pred_reg(guard)?,
                guard_value: flags & FLAG_GUARD_VALUE != 0,
            }))
        }
        other => Err(TraceError::BadEventTag(other)),
    }
}

fn read_u32_field<R: Read + ?Sized>(input: &mut R, field: &'static str) -> Result<u32, TraceError> {
    let v = varint::read_u64(input)?;
    u32::try_from(v).map_err(|_| TraceError::FieldOverflow(field))
}

fn pred_reg(index: u8) -> Result<PredReg, TraceError> {
    PredReg::new(index).ok_or(TraceError::BadPredReg(index))
}

/// The index carried by an event (alias of [`Event::index`], kept so
/// writer/reader share one name for the delta base).
pub(crate) fn event_index(event: &Event) -> u64 {
    event.index()
}

pub(crate) fn write_summary<W: Write + ?Sized>(
    out: &mut W,
    summary: &RunSummary,
) -> io::Result<()> {
    varint::write_u64(out, summary.instructions)?;
    varint::write_u64(out, summary.branches)?;
    varint::write_u64(out, summary.conditional_branches)?;
    varint::write_u64(out, summary.region_branches)?;
    varint::write_u64(out, summary.taken_conditional)?;
    varint::write_u64(out, summary.pred_writes)?;
    out.write_all(&[summary.halted as u8])
}

pub(crate) fn read_summary<R: Read + ?Sized>(input: &mut R) -> Result<RunSummary, TraceError> {
    let instructions = varint::read_u64(input)?;
    let branches = varint::read_u64(input)?;
    let conditional_branches = varint::read_u64(input)?;
    let region_branches = varint::read_u64(input)?;
    let taken_conditional = varint::read_u64(input)?;
    let pred_writes = varint::read_u64(input)?;
    let mut halted = [0u8; 1];
    input.read_exact(&mut halted)?;
    Ok(RunSummary {
        instructions,
        branches,
        conditional_branches,
        region_branches,
        taken_conditional,
        pred_writes,
        halted: halted[0] != 0,
    })
}

/// Incremental FNV-1a 64 — the trace checksum and cache-key hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// A `Write` adapter hashing everything it forwards.
#[derive(Debug)]
pub(crate) struct HashingWriter<W> {
    inner: W,
    hash: Fnv64,
}

impl<W: Write> HashingWriter<W> {
    pub(crate) fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: Fnv64::new(),
        }
    }

    pub(crate) fn digest(&self) -> u64 {
        self.hash.digest()
    }

    pub(crate) fn into_inner(self) -> W {
        self.inner
    }

    pub(crate) fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter hashing everything it yields.
#[derive(Debug)]
pub(crate) struct HashingReader<R> {
    inner: R,
    hash: Fnv64,
}

impl<R: Read> HashingReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: Fnv64::new(),
        }
    }

    pub(crate) fn digest(&self) -> u64 {
        self.hash.digest()
    }

    pub(crate) fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

/// A stable content hash of a program: the FNV-1a of its binary
/// encoding (falling back to the debug rendering for programs with
/// unencodable instructions). Identical programs hash identically
/// across processes and platforms.
pub fn program_hash(program: &Program) -> u64 {
    let mut hash = Fnv64::new();
    match encode_program(program) {
        Ok(words) => {
            for word in words {
                hash.update_u64(word);
            }
        }
        Err(_) => hash.update(format!("{program:?}").as_bytes()),
    }
    hash.digest()
}

/// A stable content hash of a memory image (order-independent: pairs
/// are sorted by address before hashing).
pub fn memory_fingerprint(memory: &Memory) -> u64 {
    let mut pairs: Vec<(i64, i64)> = memory.iter().collect();
    pairs.sort_unstable();
    let mut hash = Fnv64::new();
    for (addr, value) in pairs {
        hash.update_u64(addr as u64);
        hash.update_u64(value as u64);
    }
    hash.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::assemble;

    fn branch(index: u64) -> Event {
        Event::Branch(BranchEvent {
            pc: 12,
            target: 3,
            guard: PredReg::new(5).unwrap(),
            taken: true,
            conditional: true,
            region: Some(7),
            index,
        })
    }

    #[test]
    fn header_roundtrip() {
        let header = TraceHeader::new("gzip", 0xdead_beef, 42, 4_000_000);
        let mut buf = Vec::new();
        header.write_to(&mut buf).unwrap();
        let back = TraceHeader::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, header);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let header = TraceHeader::new("x", 1, 2, 3);
        let mut buf = Vec::new();
        header.write_to(&mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            TraceHeader::read_from(&mut bad.as_slice()),
            Err(TraceError::BadMagic(_))
        ));

        let mut wrong = buf;
        wrong[4] = 0xFE;
        wrong[5] = 0xFF;
        assert!(matches!(
            TraceHeader::read_from(&mut wrong.as_slice()),
            Err(TraceError::UnsupportedVersion(0xFFFE))
        ));
    }

    #[test]
    fn event_roundtrip_with_deltas() {
        let events = [branch(10), branch(10), branch(7)]; // non-monotone ok
        let mut buf = Vec::new();
        let mut prev = 0;
        for e in &events {
            prev = write_event(&mut buf, e, prev).unwrap();
        }
        let mut cursor = buf.as_slice();
        let mut prev = 0;
        for e in &events {
            let mut tag = [0u8; 1];
            cursor.read_exact(&mut tag).unwrap();
            let back = read_event(&mut cursor, tag[0], prev).unwrap();
            assert_eq!(&back, e);
            prev = event_index(&back);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = [0u8; 8];
        assert!(matches!(
            read_event(&mut buf.as_ref(), 0x7f, 0),
            Err(TraceError::BadEventTag(0x7f))
        ));
    }

    #[test]
    fn program_hash_is_stable_and_discriminating() {
        let a = assemble("mov r1 = 1\n halt").unwrap();
        let b = assemble("mov r1 = 2\n halt").unwrap();
        assert_eq!(program_hash(&a), program_hash(&a));
        assert_ne!(program_hash(&a), program_hash(&b));
    }

    #[test]
    fn memory_fingerprint_ignores_insertion_order() {
        let mut m1 = Memory::new();
        m1.store(1, 10);
        m1.store(2, 20);
        let mut m2 = Memory::new();
        m2.store(2, 20);
        m2.store(1, 10);
        assert_eq!(memory_fingerprint(&m1), memory_fingerprint(&m2));
        m2.store(3, 30);
        assert_ne!(memory_fingerprint(&m1), memory_fingerprint(&m2));
    }
}

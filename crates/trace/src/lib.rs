//! Binary trace record/replay for predicated-branch experiments.
//!
//! The paper's evaluation methodology is trace-driven: every predictor
//! configuration sees the *same* dynamic branch and predicate-write
//! stream, so accuracy differences are attributable to the predictor
//! alone. The in-tree simulator achieves that by re-executing each
//! benchmark once per predictor — correct, but wasteful for sweeps that
//! evaluate dozens of configurations over identical (binary, input)
//! pairs. This crate makes the trace a first-class artifact:
//!
//! * [`TraceWriter`] — an [`predbranch_sim::EventSink`] that streams
//!   events to any `io::Write` in a compact versioned binary format
//!   (`PBTR` magic, provenance header, varint/delta-encoded events, run
//!   summary footer, trailing checksum). Record alone, or tee next to a
//!   live harness with the tuple sink.
//! * [`TraceReader`] — streams a recorded trace back into any
//!   `EventSink` in constant memory, so
//!   `predbranch_core::PredictionHarness` runs unchanged over a replay.
//!   Truncated, corrupt, or wrong-version files yield a typed
//!   [`TraceError`], never a panic or a silently short stream.
//! * [`TraceCache`] — a content-addressed on-disk cache
//!   ([`CacheKey`] = benchmark label + hash of program encoding, input
//!   memory, and instruction budget) with atomic write-then-rename
//!   publication. `predbranch_bench`'s runner consults it so an entire
//!   experiment sweep executes each (binary, input) exactly once.
//! * [`TraceMap`] — an mmap-backed view of a fixed-stride `.pbtd`
//!   **segment sidecar** (built next to each cached `.pbt`), serving
//!   event batches as borrowed slices straight off the OS page cache:
//!   no per-replay decode, no per-replay checksum walk, and stream
//!   residency bounded by the kernel rather than any in-process memo.
//!   See the `segment` module docs for the layout and the
//!   alignment/endianness contract.
//! * `pbtrace` — a CLI to record, inspect, dump, verify, and migrate
//!   trace files (`pbtrace record --bench <name> -o out.pbt`,
//!   `pbtrace info`, `pbtrace dump`, `pbtrace verify <dir>`,
//!   `pbtrace migrate <dir>`).
//!
//! # Format (version 1)
//!
//! ```text
//! magic "PBTR" | version u16 LE
//! header: program_hash u64 | seed u64 | budget u64 | name (u16 len + bytes)
//! events: tag 0x01 branch | 0x02 pred-write, fields varint-encoded,
//!         instruction indices zigzag-delta-coded against the previous event
//! footer: tag 0xE0 | run summary | event count
//! checksum: FNV-1a-64 of all preceding bytes, u64 LE
//! ```
//!
//! Replay fidelity: prediction metrics depend only on the event stream,
//! and the recorded [`predbranch_sim::RunSummary`] is restored from the
//! footer, so a replayed run is byte-identical to a live one — the
//! differential tests in `tests/` assert exactly that across benchmarks
//! and predictor configurations.

mod cache;
mod error;
mod format;
mod mmap;
mod reader;
mod segment;
mod varint;
mod writer;

pub use cache::{CacheEntry, CacheKey, MemoStats, ServeStats, TraceCache, DECODED_MEMO_CAPACITY};
pub use error::TraceError;
pub use format::{memory_fingerprint, program_hash, TraceHeader, FORMAT_VERSION, MAGIC};
pub use mmap::Mapping;
pub use reader::{ReplayStats, TraceReader};
pub use segment::{
    migrate_trace, publish_segment, segment_path, trace_tail_checksum, MigrateOutcome, RawEvent,
    SegmentHeader, TraceMap, SEGMENT_EVENT_STRIDE, SEGMENT_EXTENSION, SEGMENT_MAGIC,
    SEGMENT_VERSION,
};
pub use writer::TraceWriter;

//! Read-only file mappings without a vendored `libc` crate.
//!
//! Segment-served replay ([`crate::TraceMap`]) wants the event section
//! resident in the OS page cache, shared between every process of a
//! sharded sweep, and paged in/out under kernel memory pressure rather
//! than counted against a per-process memo. `std` exposes no mapping
//! API, and this workspace vendors no `libc`, so the Unix path binds
//! `mmap`/`munmap` directly against the C library Rust already links —
//! two foreign functions, both POSIX-stable for decades.
//!
//! Everything degrades gracefully: on non-Unix targets, or when `mmap`
//! itself fails (exotic filesystems, sandboxes that deny `PROT_READ`
//! mappings), [`Mapping::open`] falls back to reading the file into an
//! anonymous buffer. Callers see `&[u8]` either way; only residency
//! behavior differs.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

/// A whole file as bytes: page-cache-backed where the platform allows,
/// an owned buffer otherwise.
#[derive(Debug)]
pub enum Mapping {
    /// A live `mmap(2)` of the file (Unix only). Unmapped on drop.
    #[cfg(unix)]
    Mapped(unix::MappedFile),
    /// The pure-`std` fallback: file contents read into memory.
    Buffered(Vec<u8>),
}

impl Mapping {
    /// Maps `path` read-only, falling back to a buffered read when
    /// mapping is unavailable. Empty files always use the buffer (a
    /// zero-length `mmap` is an error on most systems).
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        if len > 0 {
            if let Some(mapped) = unix::MappedFile::map(&file, len as usize) {
                return Ok(Mapping::Mapped(mapped));
            }
        }
        let mut buf = Vec::with_capacity(len as usize);
        file.read_to_end(&mut buf)?;
        Ok(Mapping::Buffered(buf))
    }

    /// Whether the bytes are served by a real mapping (as opposed to
    /// the buffered fallback).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mapping::Mapped(_) => true,
            Mapping::Buffered(_) => false,
        }
    }
}

impl Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Mapping::Mapped(m) => m.as_slice(),
            Mapping::Buffered(b) => b,
        }
    }
}

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    // POSIX constants for the two calls below. Values are identical on
    // Linux and the BSDs/macOS for this subset.
    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned read-only mapping of one file.
    #[derive(Debug)]
    pub struct MappedFile {
        ptr: *const u8,
        len: usize,
    }

    // The mapping is read-only and owned: the pointer never escapes
    // except through `as_slice`, whose lifetime is tied to `self`.
    unsafe impl Send for MappedFile {}
    unsafe impl Sync for MappedFile {}

    impl MappedFile {
        /// Maps `len` bytes of `file` read-only, or `None` if the
        /// kernel refuses (callers fall back to a buffered read).
        pub fn map(file: &File, len: usize) -> Option<Self> {
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of an open
            // fd; we validate the result against MAP_FAILED and null
            // before trusting it, and `len > 0` is the caller's
            // contract (checked in `Mapping::open`).
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED || ptr.is_null() {
                return None;
            }
            Some(MappedFile {
                ptr: ptr as *const u8,
                len,
            })
        }

        /// The mapped bytes.
        ///
        /// The file was opened read-only and mapped `MAP_PRIVATE`, so
        /// in-place mutation by other processes cannot alter what this
        /// process reads through already-resident pages; the cache's
        /// atomic rename publication means sealed files are never
        /// rewritten in place anyway.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live mapping of exactly `len` bytes,
            // unmapped only in Drop (which borrows &mut self, so no
            // outstanding slice can exist).
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MappedFile {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly what `map` mapped, once.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_matches_read() {
        let path = std::env::temp_dir().join(format!("pb-mmap-test-{}", std::process::id()));
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapping = Mapping::open(&path).unwrap();
        assert_eq!(&*mapping, payload.as_slice());
        #[cfg(unix)]
        assert!(mapping.is_mapped(), "unix should serve a real mapping");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_buffered_not_an_error() {
        let path = std::env::temp_dir().join(format!("pb-mmap-empty-{}", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let mapping = Mapping::open(&path).unwrap();
        assert!(mapping.is_empty());
        assert!(!mapping.is_mapped());
        let _ = std::fs::remove_file(&path);
    }
}

//! Streaming trace replay.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use predbranch_sim::{Event, EventSink, NullSink, RunSummary, TraceSink, EVENT_BATCH_CAPACITY};

use crate::error::TraceError;
use crate::format::{event_index, read_event, read_summary, HashingReader, TraceHeader, TAG_END};
use crate::varint;

/// What a full replay observed, beyond the events themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// The recording run's summary, restored from the footer — identical
    /// to what [`predbranch_sim::Executor::run`] returned when the trace
    /// was recorded.
    pub summary: RunSummary,
    /// Events replayed.
    pub events: u64,
    /// Branch events replayed.
    pub branches: u64,
    /// Predicate-write events replayed.
    pub pred_writes: u64,
    /// The verified file checksum.
    pub checksum: u64,
}

/// Streams a recorded trace back into any [`EventSink`], so the whole
/// prediction methodology (harness, scoreboard, metrics) runs unchanged
/// without re-executing the program.
///
/// Construction reads and validates the header; [`TraceReader::replay`]
/// then streams the event section in constant memory, verifying the
/// trailing checksum and event count. Truncated, corrupt, or
/// wrong-version files yield a typed [`TraceError`] — never a panic.
///
/// # Examples
///
/// ```
/// use predbranch_sim::{Executor, Memory, TraceSink};
/// use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
///
/// let program = predbranch_isa::assemble(
///     "mov r1 = 2\nloop: cmp.gt p1, p2 = r1, 0\n (p1) sub r1 = r1, 1\n (p1) br loop\n halt",
/// ).unwrap();
/// let header = TraceHeader::new("demo", program_hash(&program), 0, 100);
/// let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
/// let summary = Executor::new(&program, Memory::new()).run(&mut writer, 100);
/// let bytes = writer.finish(&summary).unwrap();
///
/// let mut replayed = TraceSink::new();
/// let stats = TraceReader::new(bytes.as_slice())
///     .unwrap()
///     .replay(&mut replayed)
///     .unwrap();
/// assert_eq!(stats.summary, summary);
/// assert_eq!(stats.branches, summary.branches);
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: HashingReader<R>,
    header: TraceHeader,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        TraceReader::new(BufReader::new(File::open(path).map_err(TraceError::Io)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps any reader; consumes and validates the header.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let mut input = HashingReader::new(input);
        let header = TraceHeader::read_from(&mut input)?;
        Ok(TraceReader { input, header })
    }

    /// The trace's provenance header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Replays every branch / predicate-write event into `sink`,
    /// verifying checksum and event count along the way.
    ///
    /// Events are decoded into an internal batch buffer and delivered in
    /// [`EVENT_BATCH_CAPACITY`]-sized chunks through
    /// [`EventSink::events`] — same order, same payloads as per-event
    /// delivery, but a dynamically-dispatched sink pays one virtual call
    /// per chunk. Use [`TraceReader::replay_batched`] to supply a
    /// reusable buffer when replaying many traces.
    ///
    /// `sink.instruction` is *not* called — see
    /// [`TraceReader::replay_with_instructions`] for sinks that count
    /// fetch slots.
    pub fn replay<S: EventSink>(self, sink: &mut S) -> Result<ReplayStats, TraceError> {
        let mut buffer = Vec::with_capacity(EVENT_BATCH_CAPACITY);
        self.replay_impl(sink, Delivery::Batched, &mut buffer)
    }

    /// Like [`TraceReader::replay`], but decodes into the caller's
    /// scratch `buffer` (contents overwritten), so a replay loop over
    /// many traces reuses one allocation for all of them.
    pub fn replay_batched<S: EventSink>(
        self,
        sink: &mut S,
        buffer: &mut Vec<Event>,
    ) -> Result<ReplayStats, TraceError> {
        self.replay_impl(sink, Delivery::Batched, buffer)
    }

    /// Like [`TraceReader::replay`], but delivers one
    /// [`EventSink::event`] call per decoded event instead of batching —
    /// the pre-batching pipeline shape, kept as the A/B baseline for
    /// throughput comparisons (`experiments bench`). Event order and
    /// payloads are identical to the batched path.
    pub fn replay_per_event<S: EventSink>(self, sink: &mut S) -> Result<ReplayStats, TraceError> {
        self.replay_impl(sink, Delivery::PerEvent, &mut Vec::new())
    }

    /// Like [`TraceReader::replay`], but synthesizes one
    /// `sink.instruction(pc, index)` call per dynamic instruction of the
    /// recorded run (events carry their own pc; instructions between
    /// events report pc 0), so fetch-slot-counting sinks — e.g. a
    /// timeline-attached prediction harness — account the same cycle
    /// totals as a live run.
    pub fn replay_with_instructions<S: EventSink>(
        self,
        sink: &mut S,
    ) -> Result<ReplayStats, TraceError> {
        // Instruction synthesis interleaves `instruction` callbacks with
        // the events, so this path stays per-event by construction.
        self.replay_impl(sink, Delivery::PerEventWithInstructions, &mut Vec::new())
    }

    /// Fully checks the trace (structure, event count, checksum) without
    /// consuming events.
    pub fn verify(self) -> Result<ReplayStats, TraceError> {
        self.replay(&mut NullSink)
    }

    /// Decodes the whole event section into memory.
    pub fn read_events(self) -> Result<(Vec<Event>, ReplayStats), TraceError> {
        let mut sink = TraceSink::new();
        let stats = self.replay(&mut sink)?;
        Ok((sink.events().to_vec(), stats))
    }

    fn replay_impl<S: EventSink>(
        mut self,
        sink: &mut S,
        delivery: Delivery,
        buffer: &mut Vec<Event>,
    ) -> Result<ReplayStats, TraceError> {
        let mut prev_index = 0u64;
        let mut next_instruction = 0u64;
        let mut events = 0u64;
        let mut branches = 0u64;
        let mut pred_writes = 0u64;
        buffer.clear();
        loop {
            let mut tag = [0u8; 1];
            self.input.read_exact(&mut tag).map_err(TraceError::from)?;
            if tag[0] == TAG_END {
                break;
            }
            let event = read_event(&mut self.input, tag[0], prev_index)?;
            prev_index = event_index(&event);
            events += 1;
            match delivery {
                Delivery::PerEventWithInstructions => {
                    // synthesis interleaves instruction callbacks: per-event
                    match &event {
                        Event::Branch(b) => {
                            branches += 1;
                            synthesize(sink, &mut next_instruction, b.index, b.pc);
                            sink.branch(b);
                        }
                        Event::PredWrite(p) => {
                            pred_writes += 1;
                            synthesize(sink, &mut next_instruction, p.index, p.pc);
                            sink.pred_write(p);
                        }
                    }
                }
                Delivery::PerEvent => {
                    match &event {
                        Event::Branch(_) => branches += 1,
                        Event::PredWrite(_) => pred_writes += 1,
                    }
                    sink.event(&event);
                }
                Delivery::Batched => {
                    match &event {
                        Event::Branch(_) => branches += 1,
                        Event::PredWrite(_) => pred_writes += 1,
                    }
                    buffer.push(event);
                    if buffer.len() == EVENT_BATCH_CAPACITY {
                        sink.events(buffer);
                        buffer.clear();
                    }
                }
            }
        }
        if !buffer.is_empty() {
            sink.events(buffer);
            buffer.clear();
        }
        let summary = read_summary(&mut self.input)?;
        let stored_count = varint::read_u64(&mut self.input)?;
        if stored_count != events {
            return Err(TraceError::CountMismatch {
                stored: stored_count,
                decoded: events,
            });
        }
        // digest covers everything up to (not including) the checksum
        let computed = self.input.digest();
        let mut stored = [0u8; 8];
        self.input
            .get_mut()
            .read_exact(&mut stored)
            .map_err(TraceError::from)?;
        let stored = u64::from_le_bytes(stored);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        if delivery == Delivery::PerEventWithInstructions {
            while next_instruction < summary.instructions {
                sink.instruction(0, next_instruction);
                next_instruction += 1;
            }
        }
        Ok(ReplayStats {
            summary,
            events,
            branches,
            pred_writes,
            checksum: stored,
        })
    }
}

/// How [`TraceReader::replay_impl`] hands decoded events to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delivery {
    /// [`EventSink::events`] in [`EVENT_BATCH_CAPACITY`]-sized chunks.
    Batched,
    /// One [`EventSink::event`] call per event (the A/B baseline).
    PerEvent,
    /// Per-event with synthesized `instruction` callbacks interleaved.
    PerEventWithInstructions,
}

/// Emits the instruction callbacks leading up to (and including) the
/// instruction at `index`, which is known to sit at `pc`.
fn synthesize<S: EventSink>(sink: &mut S, next: &mut u64, index: u64, pc: u32) {
    while *next < index {
        sink.instruction(0, *next);
        *next += 1;
    }
    if *next == index {
        sink.instruction(pc, index);
        *next += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;
    use predbranch_isa::{assemble, Program};
    use predbranch_sim::{Executor, Memory};

    fn toy() -> (Program, RunSummary, Vec<u8>) {
        let program = assemble(
            r#"
                mov r1 = 3
            loop:
                cmp.gt p1, p2 = r1, 0
                (p1) sub r1 = r1, 1
                (p1) br loop
                halt
            "#,
        )
        .unwrap();
        let header = TraceHeader::new("toy", crate::format::program_hash(&program), 0, 1_000);
        let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
        let summary = Executor::new(&program, Memory::new()).run(&mut writer, 1_000);
        let bytes = writer.finish(&summary).unwrap();
        (program, summary, bytes)
    }

    #[test]
    fn replay_restores_summary_and_counts() {
        let (_, summary, bytes) = toy();
        let stats = TraceReader::new(bytes.as_slice())
            .unwrap()
            .verify()
            .unwrap();
        assert_eq!(stats.summary, summary);
        assert_eq!(stats.branches, summary.branches);
        assert_eq!(stats.pred_writes, summary.pred_writes);
        assert_eq!(stats.events, summary.branches + summary.pred_writes);
    }

    #[test]
    fn replayed_events_match_live_trace() {
        let (program, _, bytes) = toy();
        let mut live = TraceSink::new();
        Executor::new(&program, Memory::new()).run(&mut live, 1_000);
        let (events, _) = TraceReader::new(bytes.as_slice())
            .unwrap()
            .read_events()
            .unwrap();
        assert_eq!(events, live.events());
    }

    #[test]
    fn per_event_delivery_matches_batched() {
        let (_, _, bytes) = toy();
        let mut batched = TraceSink::new();
        let batched_stats = TraceReader::new(bytes.as_slice())
            .unwrap()
            .replay(&mut batched)
            .unwrap();
        let mut per_event = TraceSink::new();
        let per_event_stats = TraceReader::new(bytes.as_slice())
            .unwrap()
            .replay_per_event(&mut per_event)
            .unwrap();
        assert_eq!(batched_stats, per_event_stats);
        assert_eq!(batched.events(), per_event.events());
    }

    #[test]
    fn synthesized_instruction_stream_is_complete() {
        #[derive(Default)]
        struct CountSink {
            instructions: u64,
            last: Option<u64>,
        }
        impl EventSink for CountSink {
            fn branch(&mut self, _: &predbranch_sim::BranchEvent) {}
            fn pred_write(&mut self, _: &predbranch_sim::PredWriteEvent) {}
            fn instruction(&mut self, _pc: u32, index: u64) {
                assert_eq!(index, self.last.map_or(0, |l| l + 1));
                self.last = Some(index);
                self.instructions += 1;
            }
        }
        let (_, summary, bytes) = toy();
        let mut sink = CountSink::default();
        let stats = TraceReader::new(bytes.as_slice())
            .unwrap()
            .replay_with_instructions(&mut sink)
            .unwrap();
        assert_eq!(sink.instructions, summary.instructions);
        assert_eq!(stats.summary.instructions, summary.instructions);
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let (_, _, bytes) = toy();
        // chop at a spread of offsets: header, events, footer, checksum
        for cut in [
            0,
            3,
            5,
            20,
            bytes.len() / 2,
            bytes.len() - 9,
            bytes.len() - 1,
        ] {
            let err = match TraceReader::new(&bytes[..cut]) {
                Err(e) => e,
                Ok(reader) => reader.verify().unwrap_err(),
            };
            assert!(
                matches!(err, TraceError::Truncated),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let (_, _, mut bytes) = toy();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = TraceReader::new(bytes.as_slice())
            .and_then(|r| r.verify())
            .unwrap_err();
        // depending on where the flip lands the decoder may trip on a
        // structural error first; checksum is the backstop
        assert!(
            matches!(
                err,
                TraceError::ChecksumMismatch { .. }
                    | TraceError::BadEventTag(_)
                    | TraceError::BadPredReg(_)
                    | TraceError::CountMismatch { .. }
                    | TraceError::FieldOverflow(_)
                    | TraceError::Truncated
            ),
            "{err:?}"
        );
    }
}

//! Decoded segment sidecars (`.pbtd`) and the mmap-backed [`TraceMap`].
//!
//! The v1 varint stream is compact but serial: every replay pays a full
//! decode and checksum walk, and the decoded-event memo that amortized
//! that cost is per-process and bounded (it thrashes once a sweep
//! touches more streams than [`crate::DECODED_MEMO_CAPACITY`]). The
//! segment sidecar trades disk bytes for serving speed: events are
//! stored **fixed-stride**, so a replay is a pointer cast over an
//! `mmap`ed file — no decode, no per-replay allocation proportional to
//! the stream, and residency managed by the OS page cache, shared
//! between every process of a sharded sweep.
//!
//! # Layout (segment version 1)
//!
//! ```text
//! offset  0  magic "PBTD" · version u16 LE · layout canary u16 LE (0x00FF)
//! offset  8  program_hash u64 · source_checksum u64 · event_count u64
//! offset 32  RunSummary: instructions · branches · conditional ·
//!            region · taken_conditional · pred_writes · halted (7 × u64)
//! offset 88  reserved u64 (zero)
//! offset 96  events: event_count × 24-byte records (below)
//! tail       checksum u64 LE — FNV-1a of every preceding byte
//! ```
//!
//! Each 24-byte record:
//!
//! ```text
//! index u64 · pc u32 · target u32 · kind u8 (0x01 branch, 0x02 pred
//! write) · guard u8 · flags u8 (same bits as the v1 format) · preg u8
//! · region u16 · pad u16 (zero)
//! ```
//!
//! # Alignment and endianness contract
//!
//! All multi-byte fields are little-endian **byte arrays**: the record
//! struct has alignment 1 and size 24 (statically asserted), so the
//! borrowed `&[RawEvent]` cast out of the mapping is valid at any byte
//! offset and on any host. Big-endian hosts read the same files
//! correctly (at the cost of a byte swap per field); the layout canary
//! at offset 6 reads as `0x00FF` exactly when the file is interpreted
//! little-endian. The event section starts at byte 96 — 8-aligned so a
//! future wider record type could be cast directly.
//!
//! # Integrity
//!
//! `source_checksum` is the trailing FNV-1a checksum of the `.pbt` the
//! segment was built from. A sealed trace is never rewritten in place
//! (the cache publishes by rename), so checking those 8 bytes binds a
//! sidecar to its exact trace generation: re-record the trace and the
//! stale sidecar is detected ([`TraceError::SegmentStale`]) and
//! rebuilt. [`TraceMap::open`] verifies the segment's own trailing
//! checksum once per open — replays served from an open map do no
//! further hashing.

use std::fs;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use predbranch_isa::PredReg;
use predbranch_sim::{BranchEvent, Event, EventSink, PredWriteEvent, RunSummary};

use crate::error::TraceError;
use crate::format::{
    Fnv64, HashingWriter, FLAG_CONDITIONAL, FLAG_GUARD_VALUE, FLAG_HAS_REGION, FLAG_TAKEN,
    FLAG_VALUE,
};
use crate::reader::TraceReader;

/// File magic of a segment sidecar.
pub const SEGMENT_MAGIC: [u8; 4] = *b"PBTD";

/// Current segment format version. Readers reject anything else.
pub const SEGMENT_VERSION: u16 = 1;

/// The layout canary stored at offset 6: reads back as this value
/// exactly when the file is interpreted little-endian.
const LAYOUT_CANARY: u16 = 0x00FF;

/// Bytes before the event section.
const SEGMENT_HEADER_LEN: usize = 96;

/// Bytes per event record.
pub const SEGMENT_EVENT_STRIDE: usize = 24;

/// Sidecar file extension (next to `.pbt`).
pub const SEGMENT_EXTENSION: &str = "pbtd";

const KIND_BRANCH: u8 = 0x01;
const KIND_PRED_WRITE: u8 = 0x02;

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Where the segment sidecar for `trace_path` lives.
pub fn segment_path(trace_path: &Path) -> PathBuf {
    trace_path.with_extension(SEGMENT_EXTENSION)
}

/// The trailing FNV-1a checksum of a sealed `.pbt` — the 8 bytes that
/// bind a sidecar to its exact trace generation — read without
/// decoding the file.
pub fn trace_tail_checksum(trace_path: &Path) -> Result<u64, TraceError> {
    let mut file = fs::File::open(trace_path).map_err(TraceError::Io)?;
    let len = file.metadata().map_err(TraceError::Io)?.len();
    if len < 8 {
        return Err(TraceError::Truncated);
    }
    file.seek(SeekFrom::End(-8)).map_err(TraceError::Io)?;
    let mut tail = [0u8; 8];
    file.read_exact(&mut tail).map_err(TraceError::from)?;
    Ok(u64::from_le_bytes(tail))
}

/// One fixed-stride event record, exactly as stored on disk.
///
/// Every multi-byte field is a little-endian byte array, which pins
/// `align_of::<RawEvent>()` to 1 and `size_of` to the stride — both
/// statically asserted — so a `&[u8]` region of the mapping casts to
/// `&[RawEvent]` soundly regardless of host alignment rules, and field
/// reads (`u64::from_le_bytes` etc.) compile to plain loads on
/// little-endian hosts.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct RawEvent {
    index: [u8; 8],
    pc: [u8; 4],
    target: [u8; 4],
    kind: u8,
    guard: u8,
    flags: u8,
    preg: u8,
    region: [u8; 2],
    pad: [u8; 2],
}

const _: () = {
    assert!(std::mem::size_of::<RawEvent>() == SEGMENT_EVENT_STRIDE);
    assert!(std::mem::align_of::<RawEvent>() == 1);
    assert!(SEGMENT_HEADER_LEN.is_multiple_of(8));
};

impl RawEvent {
    /// Encodes a decoded event into its fixed-stride record.
    pub fn encode(event: &Event) -> RawEvent {
        match event {
            Event::Branch(b) => {
                let mut flags = 0u8;
                if b.taken {
                    flags |= FLAG_TAKEN;
                }
                if b.conditional {
                    flags |= FLAG_CONDITIONAL;
                }
                if b.region.is_some() {
                    flags |= FLAG_HAS_REGION;
                }
                RawEvent {
                    index: b.index.to_le_bytes(),
                    pc: b.pc.to_le_bytes(),
                    target: b.target.to_le_bytes(),
                    kind: KIND_BRANCH,
                    guard: b.guard.index(),
                    flags,
                    preg: 0,
                    region: b.region.unwrap_or(0).to_le_bytes(),
                    pad: [0; 2],
                }
            }
            Event::PredWrite(p) => {
                let mut flags = 0u8;
                if p.value {
                    flags |= FLAG_VALUE;
                }
                if p.guard_value {
                    flags |= FLAG_GUARD_VALUE;
                }
                RawEvent {
                    index: p.index.to_le_bytes(),
                    pc: p.pc.to_le_bytes(),
                    target: [0; 4],
                    kind: KIND_PRED_WRITE,
                    guard: p.guard.index(),
                    flags,
                    preg: p.preg.index(),
                    region: [0; 2],
                    pad: [0; 2],
                }
            }
        }
    }

    /// Decodes the record, validating predicate-register indices and
    /// the kind tag.
    pub fn decode(&self) -> Result<Event, TraceError> {
        let index = u64::from_le_bytes(self.index);
        let pc = u32::from_le_bytes(self.pc);
        let guard = PredReg::new(self.guard).ok_or(TraceError::BadPredReg(self.guard))?;
        match self.kind {
            KIND_BRANCH => Ok(Event::Branch(BranchEvent {
                pc,
                target: u32::from_le_bytes(self.target),
                guard,
                taken: self.flags & FLAG_TAKEN != 0,
                conditional: self.flags & FLAG_CONDITIONAL != 0,
                region: if self.flags & FLAG_HAS_REGION != 0 {
                    Some(u16::from_le_bytes(self.region))
                } else {
                    None
                },
                index,
            })),
            KIND_PRED_WRITE => Ok(Event::PredWrite(PredWriteEvent {
                pc,
                preg: PredReg::new(self.preg).ok_or(TraceError::BadPredReg(self.preg))?,
                value: self.flags & FLAG_VALUE != 0,
                index,
                guard,
                guard_value: self.flags & FLAG_GUARD_VALUE != 0,
            })),
            other => Err(TraceError::BadEventTag(other)),
        }
    }

    fn as_bytes(&self) -> [u8; SEGMENT_EVENT_STRIDE] {
        let mut out = [0u8; SEGMENT_EVENT_STRIDE];
        out[0..8].copy_from_slice(&self.index);
        out[8..12].copy_from_slice(&self.pc);
        out[12..16].copy_from_slice(&self.target);
        out[16] = self.kind;
        out[17] = self.guard;
        out[18] = self.flags;
        out[19] = self.preg;
        out[20..22].copy_from_slice(&self.region);
        // bytes 22..24 stay zero (pad)
        out
    }
}

/// Provenance and totals of one segment sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Hash of the program the source trace was recorded from.
    pub program_hash: u64,
    /// Trailing checksum of the `.pbt` this segment was built from.
    pub source_checksum: u64,
    /// Events in the segment.
    pub event_count: u64,
    /// The recording run's summary, as the v1 footer stored it.
    pub summary: RunSummary,
}

impl SegmentHeader {
    fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(&SEGMENT_MAGIC)?;
        out.write_all(&SEGMENT_VERSION.to_le_bytes())?;
        out.write_all(&LAYOUT_CANARY.to_le_bytes())?;
        out.write_all(&self.program_hash.to_le_bytes())?;
        out.write_all(&self.source_checksum.to_le_bytes())?;
        out.write_all(&self.event_count.to_le_bytes())?;
        let s = &self.summary;
        for word in [
            s.instructions,
            s.branches,
            s.conditional_branches,
            s.region_branches,
            s.taken_conditional,
            s.pred_writes,
            s.halted as u64,
            0u64, // reserved
        ] {
            out.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    fn read_from(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < SEGMENT_HEADER_LEN {
            return Err(TraceError::Truncated);
        }
        if bytes[0..4] != SEGMENT_MAGIC {
            return Err(TraceError::BadSegment("bad magic"));
        }
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != SEGMENT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        if u16::from_le_bytes(bytes[6..8].try_into().unwrap()) != LAYOUT_CANARY {
            return Err(TraceError::BadSegment("layout canary mismatch"));
        }
        let halted = word(80);
        if halted > 1 || word(88) != 0 {
            return Err(TraceError::BadSegment("corrupt header field"));
        }
        Ok(SegmentHeader {
            program_hash: word(8),
            source_checksum: word(16),
            event_count: word(24),
            summary: RunSummary {
                instructions: word(32),
                branches: word(40),
                conditional_branches: word(48),
                region_branches: word(56),
                taken_conditional: word(64),
                pred_writes: word(72),
                halted: halted != 0,
            },
        })
    }
}

/// Atomically publishes a segment sidecar next to `trace_path` from an
/// already-decoded event stream. Used by the cache when it records or
/// first decodes a trace, and by `pbtrace migrate`.
///
/// Same discipline as trace publication: write a uniquely named
/// temporary in the same directory, fsync, rename. Concurrent builders
/// race benignly — every temporary has identical contents.
pub fn publish_segment(
    trace_path: &Path,
    program_hash: u64,
    source_checksum: u64,
    summary: &RunSummary,
    events: &[Event],
) -> Result<PathBuf, TraceError> {
    let target = segment_path(trace_path);
    let dir = trace_path.parent().unwrap_or_else(|| Path::new("."));
    let stem = trace_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "segment".into());
    let tmp = dir.join(format!(
        ".{stem}.pbtd.tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let header = SegmentHeader {
        program_hash,
        source_checksum,
        event_count: events.len() as u64,
        summary: *summary,
    };
    let result = (|| {
        let file = fs::File::create(&tmp)?;
        let mut out = HashingWriter::new(BufWriter::new(file));
        header.write_to(&mut out)?;
        for event in events {
            out.write_all(&RawEvent::encode(event).as_bytes())?;
        }
        let digest = out.digest();
        let inner = out.get_mut();
        inner.write_all(&digest.to_le_bytes())?;
        inner.flush()?;
        inner.get_ref().sync_all()?;
        fs::rename(&tmp, &target)?;
        Ok(target.clone())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result.map_err(TraceError::Io)
}

/// What [`migrate_trace`] did for one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateOutcome {
    /// A valid, up-to-date sidecar already existed; nothing written.
    UpToDate,
    /// A sidecar was built (none existed, or the existing one was
    /// stale/corrupt).
    Built,
}

/// Ensures `trace_path` has a valid segment sidecar, building one from
/// a full (verified) decode when needed. Idempotent: a second call
/// finds the sidecar current and writes nothing.
pub fn migrate_trace(trace_path: &Path) -> Result<MigrateOutcome, TraceError> {
    let tail = trace_tail_checksum(trace_path)?;
    match TraceMap::open(&segment_path(trace_path)) {
        Ok(map) if map.header().source_checksum == tail => return Ok(MigrateOutcome::UpToDate),
        _ => {}
    }
    let reader = TraceReader::open(trace_path)?;
    let program_hash = reader.header().program_hash;
    let (events, stats) = reader.read_events()?;
    publish_segment(
        trace_path,
        program_hash,
        stats.checksum,
        &stats.summary,
        &events,
    )?;
    Ok(MigrateOutcome::Built)
}

/// An open, validated segment sidecar serving borrowed event batches
/// straight off the page cache.
///
/// Opening validates structure (magic, version, canary, exact size for
/// the stored event count) and walks the trailing checksum **once**;
/// every [`TraceMap::replay`] after that is a fixed-stride scan of the
/// mapping — no decode pass, no hashing, memory residency owned by the
/// OS rather than any in-process memo.
#[derive(Debug)]
pub struct TraceMap {
    mapping: crate::mmap::Mapping,
    header: SegmentHeader,
}

impl TraceMap {
    /// Opens and fully validates a `.pbtd` file.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let mapping = crate::mmap::Mapping::open(path).map_err(TraceError::from)?;
        let header = SegmentHeader::read_from(&mapping)?;
        let events_len = (header.event_count as usize)
            .checked_mul(SEGMENT_EVENT_STRIDE)
            .ok_or(TraceError::BadSegment("event count overflows"))?;
        let expected_len = SEGMENT_HEADER_LEN + events_len + 8;
        if mapping.len() != expected_len {
            return Err(if mapping.len() < expected_len {
                TraceError::Truncated
            } else {
                TraceError::BadSegment("trailing garbage")
            });
        }
        let body = &mapping[..expected_len - 8];
        let mut hash = Fnv64::new();
        hash.update(body);
        let computed = hash.digest();
        let stored = u64::from_le_bytes(mapping[expected_len - 8..].try_into().unwrap());
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        let map = TraceMap { mapping, header };
        // Validate every record's tag and register fields now, so a
        // successful open guarantees replays deliver only well-formed
        // events (the sink partial-delivery invariant the v1 path gets
        // from decode-before-deliver).
        for raw in map.raw_events() {
            raw.decode()?;
        }
        Ok(map)
    }

    /// Opens the sidecar for `trace_path` and checks it was built from
    /// exactly the sealed trace currently on disk (trailing-checksum
    /// binding). A sidecar left over from a previous recording of the
    /// same key yields [`TraceError::SegmentStale`].
    pub fn open_bound(trace_path: &Path) -> Result<Self, TraceError> {
        let map = TraceMap::open(&segment_path(trace_path))?;
        let tail = trace_tail_checksum(trace_path)?;
        if map.header.source_checksum != tail {
            return Err(TraceError::SegmentStale {
                segment: map.header.source_checksum,
                trace: tail,
            });
        }
        Ok(map)
    }

    /// The segment's provenance header.
    pub fn header(&self) -> &SegmentHeader {
        &self.header
    }

    /// The recording run's summary.
    pub fn summary(&self) -> RunSummary {
        self.header.summary
    }

    /// Whether the bytes come from a real `mmap` (false = buffered
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        self.mapping.is_mapped()
    }

    /// The raw fixed-stride records, borrowed from the mapping.
    pub fn raw_events(&self) -> &[RawEvent] {
        let count = self.header.event_count as usize;
        let bytes =
            &self.mapping[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + count * SEGMENT_EVENT_STRIDE];
        debug_assert_eq!(
            bytes
                .as_ptr()
                .align_offset(std::mem::align_of::<RawEvent>()),
            0
        );
        // SAFETY: `RawEvent` is a plain-old-data byte-array struct with
        // size == SEGMENT_EVENT_STRIDE and alignment 1 (both statically
        // asserted), every bit pattern is a valid value of the type,
        // and `bytes` spans exactly `count` records (length validated
        // at open). The returned slice borrows `self.mapping`, which
        // outlives it.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const RawEvent, count) }
    }

    /// Replays the whole stream into `sink` in
    /// [`predbranch_sim::EVENT_BATCH_CAPACITY`]-sized batches, decoding
    /// each batch into the caller's scratch `buffer` (one reusable
    /// allocation, independent of stream length). Returns the recorded
    /// run's summary.
    pub fn replay<S: EventSink>(
        &self,
        sink: &mut S,
        buffer: &mut Vec<Event>,
    ) -> Result<RunSummary, TraceError> {
        for chunk in self
            .raw_events()
            .chunks(predbranch_sim::EVENT_BATCH_CAPACITY)
        {
            buffer.clear();
            for raw in chunk {
                buffer.push(raw.decode()?);
            }
            sink.events(buffer);
        }
        buffer.clear();
        Ok(self.header.summary)
    }

    /// Decodes the whole stream into memory.
    pub fn read_events(&self) -> Result<Vec<Event>, TraceError> {
        self.raw_events().iter().map(RawEvent::decode).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, Memory, TraceSink};

    fn toy_trace(dir_tag: &str) -> (PathBuf, Vec<Event>, RunSummary) {
        let program = predbranch_isa::assemble(
            r#"
                mov r1 = 6
            loop:
                cmp.gt p1, p2 = r1, 0
                (p1) sub r1 = r1, 1
                (p1) br loop
                halt
            "#,
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!(
            "pb-segment-{dir_tag}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.pbt");
        let header =
            crate::TraceHeader::new("toy", crate::format::program_hash(&program), 0, 1_000);
        let mut writer = crate::TraceWriter::create(&path, &header).unwrap();
        let mut sink = TraceSink::new();
        let summary = {
            let mut tee = (&mut sink, &mut writer);
            Executor::new(&program, Memory::new()).run(&mut tee, 1_000)
        };
        writer.finish(&summary).unwrap();
        (path, sink.events().to_vec(), summary)
    }

    #[test]
    fn migrate_builds_then_is_idempotent() {
        let (path, events, summary) = toy_trace("migrate");
        assert_eq!(migrate_trace(&path).unwrap(), MigrateOutcome::Built);
        assert_eq!(migrate_trace(&path).unwrap(), MigrateOutcome::UpToDate);

        let map = TraceMap::open_bound(&path).unwrap();
        assert_eq!(map.summary(), summary);
        assert_eq!(map.read_events().unwrap(), events);

        let mut replayed = TraceSink::new();
        let mut buffer = Vec::new();
        let s = map.replay(&mut replayed, &mut buffer).unwrap();
        assert_eq!(s, summary);
        assert_eq!(replayed.events(), events.as_slice());
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn stale_sidecar_is_detected_by_source_binding() {
        let (path, _, summary) = toy_trace("stale");
        migrate_trace(&path).unwrap();
        // simulate a re-recorded trace: append-free rewrite with a
        // different tail (flip one byte of the stored checksum)
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            TraceMap::open_bound(&path),
            Err(TraceError::SegmentStale { .. })
        ));
        // migrate rebuilds from the (now-corrupt) trace: decode fails,
        // typed error, no partial sidecar published
        assert!(migrate_trace(&path).is_err());
        let _ = summary;
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn corruption_in_the_event_section_fails_open() {
        let (path, _, _) = toy_trace("corrupt");
        migrate_trace(&path).unwrap();
        let seg = segment_path(&path);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = SEGMENT_HEADER_LEN + (bytes.len() - SEGMENT_HEADER_LEN - 8) / 2;
        bytes[mid] ^= 0x10;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            TraceMap::open(&seg),
            Err(TraceError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn truncation_and_garbage_are_typed() {
        let (path, _, _) = toy_trace("trunc");
        migrate_trace(&path).unwrap();
        let seg = segment_path(&path);
        let bytes = fs::read(&seg).unwrap();

        fs::write(&seg, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(TraceMap::open(&seg), Err(TraceError::Truncated)));

        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 3]);
        fs::write(&seg, &long).unwrap();
        assert!(matches!(
            TraceMap::open(&seg),
            Err(TraceError::BadSegment(_))
        ));
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}

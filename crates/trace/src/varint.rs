//! LEB128 varints and zigzag signed deltas — the wire primitives of the
//! trace format.

use std::io::{self, Read, Write};

/// Writes `value` as an LEB128 varint (1–10 bytes).
pub fn write_u64<W: Write + ?Sized>(out: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Reads an LEB128 varint. Fails with `InvalidData` past 10 bytes.
pub fn read_u64<R: Read + ?Sized>(input: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        input.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        value |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zigzag-encodes a signed value so small magnitudes stay small.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let buf = [0x80u8, 0x80];
        let err = read_u64(&mut buf.as_ref()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xffu8; 11];
        let err = read_u64(&mut buf.as_ref()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

//! Streaming trace recording.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use predbranch_sim::{BranchEvent, Event, EventSink, PredWriteEvent, RunSummary};

use crate::format::{event_index, write_event, write_summary, HashingWriter, TraceHeader, TAG_END};

/// An [`EventSink`] that encodes every event straight to an
/// [`io::Write`], in constant memory.
///
/// The writer is a drop-in sink for [`predbranch_sim::Executor::run`]:
/// record alone, or tee alongside a live consumer with the tuple sink
/// (`(&mut harness, &mut writer)`). Call [`TraceWriter::finish`] with
/// the run's [`RunSummary`] to seal the file — an unfinished trace has
/// no footer/checksum and readers will reject it as truncated.
///
/// I/O errors inside sink callbacks (which cannot return errors) are
/// latched and surfaced by `finish`.
///
/// # Examples
///
/// ```
/// use predbranch_sim::{Executor, Memory};
/// use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
///
/// let program = predbranch_isa::assemble("mov r1 = 1\n halt").unwrap();
/// let header = TraceHeader::new("demo", program_hash(&program), 0, 100);
/// let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
/// let summary = Executor::new(&program, Memory::new()).run(&mut writer, 100);
/// let bytes = writer.finish(&summary).unwrap();
/// let reader = TraceReader::new(bytes.as_slice()).unwrap();
/// assert_eq!(reader.header().name, "demo");
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: HashingWriter<W>,
    prev_index: u64,
    events: u64,
    branches: u64,
    pred_writes: u64,
    error: Option<io::Error>,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<Path>, header: &TraceHeader) -> io::Result<Self> {
        TraceWriter::new(BufWriter::new(File::create(path)?), header)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on any writer; the header goes out immediately.
    pub fn new(out: W, header: &TraceHeader) -> io::Result<Self> {
        let mut out = HashingWriter::new(out);
        header.write_to(&mut out)?;
        Ok(TraceWriter {
            out,
            prev_index: 0,
            events: 0,
            branches: 0,
            pred_writes: 0,
            error: None,
        })
    }

    /// Events recorded so far.
    pub fn events_recorded(&self) -> u64 {
        self.events
    }

    /// Branch events recorded so far.
    pub fn branches_recorded(&self) -> u64 {
        self.branches
    }

    /// Predicate-write events recorded so far.
    pub fn pred_writes_recorded(&self) -> u64 {
        self.pred_writes
    }

    /// Appends one event (what the [`EventSink`] impl calls).
    pub fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        match write_event(&mut self.out, event, self.prev_index) {
            Ok(index) => {
                self.prev_index = index;
                self.events += 1;
                match event {
                    Event::Branch(_) => self.branches += 1,
                    Event::PredWrite(_) => self.pred_writes += 1,
                }
                debug_assert_eq!(self.prev_index, event_index(event));
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// Seals the trace: end marker, run summary, event count, checksum.
    /// Returns the inner writer, flushed.
    pub fn finish(mut self, summary: &RunSummary) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.write_all(&[TAG_END])?;
        write_summary(&mut self.out, summary)?;
        crate::varint::write_u64(&mut self.out, self.events)?;
        let digest = self.out.digest();
        // the checksum itself is outside the checksummed range
        self.out.get_mut().write_all(&digest.to_le_bytes())?;
        let mut inner = self.out.into_inner();
        inner.flush()?;
        Ok(inner)
    }
}

impl<W: Write> EventSink for TraceWriter<W> {
    fn branch(&mut self, event: &BranchEvent) {
        self.record(&Event::Branch(*event));
    }

    fn pred_write(&mut self, event: &PredWriteEvent) {
        self.record(&Event::PredWrite(*event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_isa::PredReg;

    fn header() -> TraceHeader {
        TraceHeader::new("t", 1, 2, 3)
    }

    fn write_ev(index: u64) -> PredWriteEvent {
        PredWriteEvent {
            pc: 4,
            preg: PredReg::new(1).unwrap(),
            value: true,
            index,
            guard: PredReg::TRUE,
            guard_value: true,
        }
    }

    #[test]
    fn counts_by_kind() {
        let mut w = TraceWriter::new(Vec::new(), &header()).unwrap();
        w.pred_write(&write_ev(0));
        w.pred_write(&write_ev(1));
        assert_eq!(w.events_recorded(), 2);
        assert_eq!(w.pred_writes_recorded(), 2);
        assert_eq!(w.branches_recorded(), 0);
    }

    #[test]
    fn finish_surfaces_latched_io_errors() {
        /// A writer that fails after the header has gone out.
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 < buf.len() {
                    Err(io::Error::other("disk full"))
                } else {
                    self.0 -= buf.len();
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut w = TraceWriter::new(FailAfter(64), &header()).unwrap();
        for i in 0..64 {
            w.pred_write(&write_ev(i));
        }
        let summary = RunSummary {
            instructions: 64,
            branches: 0,
            conditional_branches: 0,
            region_branches: 0,
            taken_conditional: 0,
            pred_writes: 64,
            halted: true,
        };
        assert!(w.finish(&summary).is_err());
    }
}

//! End-to-end tests of the `pbtrace` binary: the `--json` views must
//! agree number-for-number with the text views, and `characterize` must
//! be byte-deterministic at any `--jobs` level (pinned by a golden).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use predbranch_sweep::Json;
use predbranch_workloads::suite;

fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("predbranch-pbtrace-{}-{name}", std::process::id()));
    fs::create_dir_all(&p).unwrap();
    p
}

fn pbtrace(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pbtrace"))
        .args(args)
        .output()
        .expect("pbtrace runs");
    assert!(
        out.status.success(),
        "pbtrace {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Records the first suite benchmark with all-default parameters into
/// `dir/quick.pbt` and returns the file path. Defaults mean the trace
/// bytes are a pure function of the workload crate.
fn record_quick(dir: &std::path::Path) -> String {
    let bench = suite()[0].name().to_string();
    let trace = dir.join("quick.pbt").to_str().unwrap().to_string();
    pbtrace(&["record", "--bench", &bench, "-o", &trace]);
    trace
}

/// The first `: `-separated field value on the text line starting with
/// `label`, with thousands separators stripped.
fn text_field(text: &str, label: &str) -> String {
    text.lines()
        .find(|l| l.trim_start().starts_with(label))
        .unwrap_or_else(|| panic!("no line labeled {label:?} in:\n{text}"))
        .split(':')
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .replace(',', "")
}

#[test]
fn info_json_matches_text_numbers() {
    let dir = scratch_dir("info");
    let trace = record_quick(&dir);

    let text = pbtrace(&["info", &trace]);
    let json = Json::parse(&pbtrace(&["info", &trace, "--json"])).unwrap();

    for (text_label, json_key) in [
        ("events", "events"),
        ("pred writes", "pred_writes"),
        ("instructions", "instructions"),
        ("budget", "budget"),
    ] {
        assert_eq!(
            text_field(&text, text_label),
            json.get(json_key).unwrap().as_u64().unwrap().to_string(),
            "{json_key} differs between text and JSON"
        );
    }
    assert_eq!(
        text_field(&text, "checksum"),
        json.get("checksum").unwrap().as_str().unwrap()
    );
    assert_eq!(
        text_field(&text, "benchmark"),
        json.get("benchmark").unwrap().as_str().unwrap()
    );
    assert_eq!(
        text_field(&text, "halted"),
        json.get("halted").unwrap().render()
    );

    fs::remove_dir_all(dir).ok();
}

#[test]
fn stats_json_matches_text_numbers() {
    let dir = scratch_dir("stats");
    record_quick(&dir);
    let dir_str = dir.to_str().unwrap();

    let text = pbtrace(&["stats", dir_str]);
    let json = Json::parse(&pbtrace(&["stats", dir_str, "--json"])).unwrap();

    assert_eq!(
        text_field(&text, "entries"),
        json.get("entries").unwrap().as_u64().unwrap().to_string()
    );
    assert_eq!(
        text_field(&text, "bytes"),
        json.get("bytes").unwrap().as_u64().unwrap().to_string()
    );
    let benches = json.get("benchmarks").unwrap().as_arr().unwrap();
    assert_eq!(benches.len(), 1);
    assert_eq!(
        benches[0].get("benchmark").unwrap().as_str().unwrap(),
        suite()[0].name()
    );

    // the decoded-event memo block: capacity from the library, no
    // thrash for a one-trace directory, and a fresh process has no
    // traffic yet (stats only scans headers)
    let memo = json.get("memo").unwrap();
    assert_eq!(
        memo.get("capacity").unwrap().as_u64(),
        Some(predbranch_trace::DECODED_MEMO_CAPACITY as u64)
    );
    assert_eq!(memo.get("exceeds_capacity").unwrap().render(), "false");
    assert_eq!(memo.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(memo.get("misses").unwrap().as_u64(), Some(0));
    assert_eq!(memo.get("evictions").unwrap().as_u64(), Some(0));
    assert!(
        text_field(&text, "memo").parse::<u64>().is_ok(),
        "text view lacks a memo line:\n{text}"
    );
    assert!(!text.contains("warning:"), "one trace cannot thrash");

    fs::remove_dir_all(dir).ok();
}

#[test]
fn characterize_is_byte_deterministic_at_any_jobs_level() {
    let dir = scratch_dir("determinism");
    record_quick(&dir);
    let dir_str = dir.to_str().unwrap();

    let text = pbtrace(&["characterize", dir_str]);
    assert_eq!(text, pbtrace(&["characterize", dir_str]), "reruns differ");
    assert_eq!(
        text,
        pbtrace(&["characterize", dir_str, "--jobs", "4"]),
        "--jobs 4 output differs from sequential"
    );
    let json = pbtrace(&["characterize", dir_str, "--json"]);
    assert_eq!(
        json,
        pbtrace(&["characterize", dir_str, "--json", "--jobs", "2"]),
        "--jobs 2 JSON differs from sequential"
    );

    // the summary tallies in text and JSON views agree
    let parsed = Json::parse(&json).unwrap();
    let buckets = parsed.get("summary").unwrap();
    let statics: u64 = [
        "biased",
        "history-predictable",
        "predicate-predictable",
        "fundamentally-hard",
    ]
    .iter()
    .map(|b| buckets.get(b).unwrap().as_u64().unwrap())
    .sum();
    let summary_line = text.lines().rev().find(|l| l.contains("statics:")).unwrap();
    assert!(
        summary_line.starts_with(&format!("{statics} statics:")),
        "text summary {summary_line:?} disagrees with JSON tally {statics}"
    );

    // JSON names files by basename only: portable across machines
    let traces = parsed.get("traces").unwrap().as_arr().unwrap();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].get("file").unwrap().as_str(), Some("quick.pbt"));

    fs::remove_dir_all(dir).ok();
}

#[test]
fn characterize_output_matches_golden() {
    let dir = scratch_dir("golden");
    let trace = record_quick(&dir);

    let text = pbtrace(&["characterize", &trace]);
    let golden = include_str!("golden/characterize_quick.txt");
    if text != golden {
        let diverge = text
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (new, old))| new != old);
        match diverge {
            Some((line, (new, old))) => panic!(
                "characterize output diverges from the golden at line {}:\n  golden: {old}\n  now:    {new}",
                line + 1
            ),
            None => panic!(
                "characterize output length differs from the golden: {} vs {} bytes",
                text.len(),
                golden.len()
            ),
        }
    }

    fs::remove_dir_all(dir).ok();
}

#[test]
fn migrate_builds_sidecars_idempotently_and_verify_covers_them() {
    let dir = scratch_dir("migrate");
    let trace = record_quick(&dir); // a pre-built v1-only cache entry
    let dir_str = dir.to_str().unwrap();

    let first = pbtrace(&["migrate", dir_str]);
    assert!(first.contains("1 built, 0 up to date, 0 failed"), "{first}");
    assert!(std::path::Path::new(&trace.replace(".pbt", ".pbtd")).exists());

    // idempotent: a second run writes nothing
    let second = pbtrace(&["migrate", dir_str]);
    assert!(
        second.contains("0 built, 1 up to date, 0 failed"),
        "{second}"
    );

    // verify now covers the sidecar too, and --quiet suppresses all
    // success output
    let verbose = pbtrace(&["verify", dir_str]);
    assert!(verbose.contains("segment-served"), "{verbose}");
    assert_eq!(pbtrace(&["verify", dir_str, "--quiet"]), "");

    // stats reports full segment coverage and a configurable memo
    let json = Json::parse(&pbtrace(&[
        "stats",
        dir_str,
        "--json",
        "--memo-streams",
        "3",
    ]))
    .unwrap();
    let segments = json.get("segments").unwrap();
    assert_eq!(segments.get("entries").unwrap().as_u64(), Some(1));
    assert_eq!(
        json.get("memo").unwrap().get("capacity").unwrap().as_u64(),
        Some(3)
    );

    fs::remove_dir_all(dir).ok();
}

#[test]
fn verify_exits_nonzero_on_a_corrupted_segment() {
    let dir = scratch_dir("verify-corrupt");
    let trace = record_quick(&dir);
    let dir_str = dir.to_str().unwrap();
    pbtrace(&["migrate", dir_str]);

    // flip one byte in the middle of the sidecar's event section
    let seg = trace.replace(".pbt", ".pbtd");
    let mut bytes = fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&seg, &bytes).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_pbtrace"))
        .args(["verify", dir_str, "--quiet"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "corrupted segment must fail verify");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains(".pbtd"), "{stdout}");
    // quiet mode: the intact .pbt produced no OK line
    assert!(!stdout.contains(": OK"), "{stdout}");

    fs::remove_dir_all(dir).ok();
}

#[test]
fn characterize_rejects_missing_paths() {
    let out = Command::new(env!("CARGO_BIN_EXE_pbtrace"))
        .args(["characterize", "/nonexistent/predbranch-cache"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no such file or directory"), "{err}");
    // and it must not have created the directory
    assert!(!std::path::Path::new("/nonexistent/predbranch-cache").exists());
}

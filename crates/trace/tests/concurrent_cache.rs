//! Regression tests for concurrent trace-cache publishers: the parallel
//! sweep hands every worker its own `TraceCache` handle, so two (or
//! eight) threads recording the same `CacheKey` at once is the *normal*
//! cold-cache case, not an edge case. All publishers must succeed, every
//! observed event stream must be identical, and the surviving sealed
//! entry must verify.

use std::sync::{Arc, Barrier};

use predbranch_isa::{assemble, Program};
use predbranch_sim::{Memory, TraceSink};
use predbranch_trace::{CacheKey, TraceCache, TraceReader};

fn toy_program() -> Program {
    assemble(
        r#"
            mov r1 = 40
        loop:
            cmp.gt p1, p2 = r1, 0
            (p1) sub r1 = r1, 1
            (p1) br loop
            halt
        "#,
    )
    .unwrap()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pbt-race-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn racing_publishers_all_succeed_and_entry_verifies() {
    const PUBLISHERS: usize = 8;
    let dir = tmp_dir("publish");
    let program = Arc::new(toy_program());
    let key = CacheKey::for_run("race", &program, &Memory::new(), 10_000);
    let barrier = Arc::new(Barrier::new(PUBLISHERS));

    let handles: Vec<_> = (0..PUBLISHERS)
        .map(|_| {
            let dir = dir.clone();
            let program = Arc::clone(&program);
            let key = key.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // each thread opens its own handle, as sweep workers do
                // (TraceCache::open itself must tolerate the race on
                // create_dir_all)
                let cache = TraceCache::open(&dir).expect("concurrent open");
                let mut sink = TraceSink::new();
                barrier.wait();
                let (summary, _hit) = cache
                    .replay_or_record(&key, &program, Memory::new(), 10_000, &mut sink)
                    .expect("concurrent publish");
                (summary, sink)
            })
        })
        .collect();

    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let (first_summary, first_sink) = &results[0];
    assert!(first_summary.halted);
    for (summary, sink) in &results {
        assert_eq!(summary, first_summary, "summaries must agree");
        assert_eq!(
            sink.events(),
            first_sink.events(),
            "every publisher must observe the identical event stream"
        );
    }

    // the surviving sealed entry is intact and replayable
    let cache = TraceCache::open(&dir).unwrap();
    assert!(cache.contains(&key));
    let stats = TraceReader::open(cache.path(&key))
        .unwrap()
        .verify()
        .unwrap();
    assert_eq!(&stats.summary, first_summary);

    // no temporaries left behind by any of the racing publishers
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");

    // and scan() sees exactly one sealed entry with the right label
    let entries = cache.scan().unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].name.as_deref(), Some("race"));
    assert!(entries[0].bytes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_replayers_and_recorders_agree() {
    // warm the cache, then race replayers against a publisher that
    // re-records over the sealed entry (as a stale-detecting worker
    // would): readers hold an open fd, so the rename never tears a
    // stream out from under them.
    const THREADS: usize = 6;
    let dir = tmp_dir("mixed");
    let program = Arc::new(toy_program());
    let key = CacheKey::for_run("race", &program, &Memory::new(), 10_000);
    {
        let cache = TraceCache::open(&dir).unwrap();
        cache
            .replay_or_record(
                &key,
                &program,
                Memory::new(),
                10_000,
                &mut predbranch_sim::NullSink,
            )
            .unwrap();
    }
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let dir = dir.clone();
            let program = Arc::clone(&program);
            let key = key.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let cache = TraceCache::open(&dir).unwrap();
                let mut sink = TraceSink::new();
                barrier.wait();
                let (summary, _) = cache
                    .replay_or_record(&key, &program, Memory::new(), 10_000, &mut sink)
                    .unwrap();
                (summary, sink)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (summary, sink) in &results[1..] {
        assert_eq!(summary, &results[0].0);
        assert_eq!(sink.events(), results[0].1.events());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Differential record/replay test: for a spread of suite benchmarks and
//! predictor configurations, driving the prediction harness from a
//! replayed trace must yield *byte-identical* metrics to driving it from
//! live execution. This is the property that justifies the trace cache —
//! prediction depends only on the event stream, which the trace format
//! preserves exactly.

use predbranch_core::{build_predictor, HarnessConfig, PredictionHarness, PredictorSpec};
use predbranch_sim::{Executor, RunSummary};
use predbranch_trace::{program_hash, TraceHeader, TraceReader, TraceWriter};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

/// Smaller than the experiments' budget so the cross-product stays
/// fast, but big enough to exercise real history/scoreboard state.
const BUDGET: u64 = 400_000;

/// The paper's four predictor families: plain gshare, gshare behind the
/// squash false-path filter, the predicate global-update predictor, and
/// the combination.
const SPECS: [&str; 4] = [
    "gshare:12/12",
    "gshare:12/12+sfpf",
    "gshare:12/12+pgu8",
    "gshare:12/12+sfpf+pgu8",
];

#[test]
fn replay_is_byte_identical_to_live_simulation() {
    let all = suite();
    // first, middle, last of the canonical suite order — three distinct
    // control-flow profiles
    let picks = [0, all.len() / 2, all.len() - 1];
    let opts = CompileOptions::default();

    for &i in &picks {
        let bench = &all[i];
        let compiled = compile_benchmark(bench, &opts);
        let program = &compiled.predicated;

        // record once per (binary, input) — exactly the cache's schedule
        let header = TraceHeader::new(bench.name(), program_hash(program), EVAL_SEED, BUDGET);
        let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
        let recorded: RunSummary =
            Executor::new(program, bench.input(EVAL_SEED)).run(&mut writer, BUDGET);
        let bytes = writer.finish(&recorded).unwrap();

        for spec_str in SPECS {
            let spec: PredictorSpec = spec_str.parse().unwrap();

            let mut live = PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
            let live_summary: RunSummary =
                Executor::new(program, bench.input(EVAL_SEED)).run(&mut live, BUDGET);

            let mut replayed =
                PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
            let stats = TraceReader::new(bytes.as_slice())
                .unwrap()
                .replay(&mut replayed)
                .unwrap();

            assert_eq!(
                live.metrics(),
                replayed.metrics(),
                "metrics diverge for {} × {spec_str}",
                bench.name()
            );
            assert_eq!(
                stats.summary,
                live_summary,
                "restored summary diverges for {} × {spec_str}",
                bench.name()
            );
        }
    }
}

#[test]
fn replayed_events_drive_replay_events_identically() {
    // the buffered-replay entry point (PredictionHarness::replay_events)
    // and the streaming reader must agree with each other too
    let bench = &suite()[1];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = &compiled.predicated;

    let header = TraceHeader::new(bench.name(), program_hash(program), EVAL_SEED, BUDGET);
    let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
    let summary = Executor::new(program, bench.input(EVAL_SEED)).run(&mut writer, BUDGET);
    let bytes = writer.finish(&summary).unwrap();

    let spec: PredictorSpec = "gshare:12/12+sfpf+pgu8".parse().unwrap();
    let (events, _) = TraceReader::new(bytes.as_slice())
        .unwrap()
        .read_events()
        .unwrap();

    let mut buffered = PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
    buffered.replay_events(&events);

    let mut streamed = PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
    TraceReader::new(bytes.as_slice())
        .unwrap()
        .replay(&mut streamed)
        .unwrap();

    assert_eq!(buffered.metrics(), streamed.metrics());
}

#[test]
fn plain_binary_replays_identically_too() {
    // the no-if-conversion binary exercises the no-region event shape
    let bench = &suite()[0];
    let compiled = compile_benchmark(bench, &CompileOptions::default());
    let program = &compiled.plain;

    let header = TraceHeader::new(bench.name(), program_hash(program), EVAL_SEED, BUDGET);
    let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
    let summary = Executor::new(program, bench.input(EVAL_SEED)).run(&mut writer, BUDGET);
    let bytes = writer.finish(&summary).unwrap();

    let spec: PredictorSpec = "gshare:12/12".parse().unwrap();
    let mut live = PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
    Executor::new(program, bench.input(EVAL_SEED)).run(&mut live, BUDGET);

    let mut replayed = PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
    TraceReader::new(bytes.as_slice())
        .unwrap()
        .replay(&mut replayed)
        .unwrap();

    assert_eq!(live.metrics(), replayed.metrics());
}

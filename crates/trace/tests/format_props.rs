//! Property tests over the trace wire format: arbitrary event sequences
//! must round-trip exactly, and malformed inputs (truncation, bit
//! corruption, wrong version) must be rejected with typed errors —
//! never a panic, never a silently short stream.

use proptest::prelude::*;

use predbranch_isa::PredReg;
use predbranch_sim::{BranchEvent, Event, PredWriteEvent, RunSummary};
use predbranch_trace::{TraceError, TraceHeader, TraceReader, TraceWriter, FORMAT_VERSION, MAGIC};

fn arb_pred_reg() -> impl Strategy<Value = PredReg> {
    (0u8..64).prop_map(|i| PredReg::new(i).unwrap())
}

fn arb_branch() -> impl Strategy<Value = Event> {
    (
        any::<u32>(),
        any::<u32>(),
        arb_pred_reg(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(any::<u16>()),
        any::<u64>(),
    )
        .prop_map(|(pc, target, guard, taken, conditional, region, index)| {
            Event::Branch(BranchEvent {
                pc,
                target,
                guard,
                taken,
                conditional,
                region,
                index,
            })
        })
}

fn arb_pred_write() -> impl Strategy<Value = Event> {
    (
        any::<u32>(),
        arb_pred_reg(),
        any::<bool>(),
        any::<u64>(),
        arb_pred_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, preg, value, index, guard, guard_value)| {
            Event::PredWrite(PredWriteEvent {
                pc,
                preg,
                value,
                index,
                guard,
                guard_value,
            })
        })
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(prop_oneof![arb_branch(), arb_pred_write()], 0..200)
}

fn arb_summary() -> impl Strategy<Value = RunSummary> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                instructions,
                branches,
                conditional_branches,
                region_branches,
                taken_conditional,
                pred_writes,
                halted,
            )| RunSummary {
                instructions,
                branches,
                conditional_branches,
                region_branches,
                taken_conditional,
                pred_writes,
                halted,
            },
        )
}

fn encode(events: &[Event], summary: &RunSummary, name: &str) -> Vec<u8> {
    let header = TraceHeader::new(name, 0xdead_beef, 42, 1_000);
    let mut writer = TraceWriter::new(Vec::new(), &header).unwrap();
    for event in events {
        writer.record(event);
    }
    writer.finish(summary).unwrap()
}

proptest! {
    #[test]
    fn roundtrip_is_exact(
        events in arb_events(),
        summary in arb_summary(),
        name in ".{0,40}",
    ) {
        let bytes = encode(&events, &summary, &name);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        prop_assert_eq!(reader.header().name.as_str(), name.as_str());
        let (decoded, stats) = reader.read_events().unwrap();
        prop_assert_eq!(decoded, events);
        prop_assert_eq!(stats.summary, summary);
    }

    #[test]
    fn any_truncation_is_rejected_without_panic(
        events in arb_events(),
        summary in arb_summary(),
        cut in any::<u64>(),
    ) {
        let bytes = encode(&events, &summary, "t");
        // a strictly shorter prefix can never verify
        let cut = (cut % bytes.len() as u64) as usize;
        let err = match TraceReader::new(&bytes[..cut]) {
            Err(e) => Some(e),
            Ok(reader) => reader.verify().err(),
        };
        prop_assert!(
            matches!(err, Some(TraceError::Truncated)),
            "cut {cut}/{}: {err:?}",
            bytes.len()
        );
    }

    #[test]
    fn bit_corruption_never_passes_silently(
        events in arb_events(),
        summary in arb_summary(),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = encode(&events, &summary, "t");
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        // the checksum spans the entire file (header included), so any
        // single-bit flip must surface as a typed error — structural if
        // the decoder trips first, checksum mismatch as the backstop
        let outcome = TraceReader::new(bytes.as_slice()).and_then(|r| r.read_events());
        prop_assert!(outcome.is_err(), "flip at byte {pos} bit {bit} went undetected");
    }

    #[test]
    fn wrong_version_is_typed(events in arb_events(), summary in arb_summary()) {
        let mut bytes = encode(&events, &summary, "t");
        // bump the version field just past the magic
        let v = (FORMAT_VERSION + 1).to_le_bytes();
        bytes[MAGIC.len()] = v[0];
        bytes[MAGIC.len() + 1] = v[1];
        let err = TraceReader::new(bytes.as_slice()).err().unwrap();
        prop_assert!(
            matches!(err, TraceError::UnsupportedVersion(v) if v == FORMAT_VERSION + 1),
            "{err:?}"
        );
    }

    #[test]
    fn wrong_magic_is_typed(events in arb_events(), summary in arb_summary(), b in any::<u8>()) {
        let mut bytes = encode(&events, &summary, "t");
        bytes[0] = bytes[0].wrapping_add(b | 1);
        let err = TraceReader::new(bytes.as_slice()).err().unwrap();
        prop_assert!(matches!(err, TraceError::BadMagic(_)), "{err:?}");
    }
}

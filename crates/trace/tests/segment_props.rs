//! Property tests for the segment sidecar: over *arbitrary* event
//! sequences — including non-monotone instruction indices, which stress
//! the zigzag-delta coding the fixed-stride format replaced — a
//! segment-served replay must be byte-for-byte equivalent to the
//! streaming varint replay: same decoded events, same restored
//! [`RunSummary`], and identical downstream predictor tables. A second
//! property pins the integrity story: any single-bit corruption of a
//! sidecar must be rejected at open time, never served.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use predbranch_core::{build_predictor, HarnessConfig, PredictionHarness, PredictorSpec};
use predbranch_isa::PredReg;
use predbranch_sim::{BranchEvent, Event, PredWriteEvent, RunSummary, TraceSink};
use predbranch_trace::{
    migrate_trace, segment_path, MigrateOutcome, TraceHeader, TraceMap, TraceReader, TraceWriter,
};

fn arb_pred_reg() -> impl Strategy<Value = PredReg> {
    (0u8..64).prop_map(|i| PredReg::new(i).unwrap())
}

fn arb_branch() -> impl Strategy<Value = Event> {
    (
        any::<u32>(),
        any::<u32>(),
        arb_pred_reg(),
        any::<bool>(),
        any::<bool>(),
        proptest::option::of(any::<u16>()),
        any::<u64>(),
    )
        .prop_map(|(pc, target, guard, taken, conditional, region, index)| {
            Event::Branch(BranchEvent {
                pc,
                target,
                guard,
                taken,
                conditional,
                region,
                index,
            })
        })
}

fn arb_pred_write() -> impl Strategy<Value = Event> {
    (
        any::<u32>(),
        arb_pred_reg(),
        any::<bool>(),
        any::<u64>(),
        arb_pred_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, preg, value, index, guard, guard_value)| {
            Event::PredWrite(PredWriteEvent {
                pc,
                preg,
                value,
                index,
                guard,
                guard_value,
            })
        })
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(prop_oneof![arb_branch(), arb_pred_write()], 0..200)
}

fn arb_summary() -> impl Strategy<Value = RunSummary> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                instructions,
                branches,
                conditional_branches,
                region_branches,
                taken_conditional,
                pred_writes,
                halted,
            )| RunSummary {
                instructions,
                branches,
                conditional_branches,
                region_branches,
                taken_conditional,
                pred_writes,
                halted,
            },
        )
}

/// Writes a sealed v1 trace holding `events` + `summary` to a uniquely
/// named file in the OS temp dir and returns its path.
fn sealed_trace(events: &[Event], summary: &RunSummary) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "predbranch-segprop-{}-{}.pbt",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let header = TraceHeader::new("prop", 0xdead_beef, 42, 1_000);
    let file = fs::File::create(&path).unwrap();
    let mut writer = TraceWriter::new(file, &header).unwrap();
    for event in events {
        writer.record(event);
    }
    writer.finish(summary).unwrap();
    path
}

fn cleanup(trace: &PathBuf) {
    let _ = fs::remove_file(segment_path(trace));
    let _ = fs::remove_file(trace);
}

proptest! {
    /// The core equivalence: decoded events, sink-delivered events,
    /// restored summaries, and predictor metrics all agree between the
    /// varint path and the segment path — and migration is idempotent.
    #[test]
    fn segment_replay_equals_varint_replay(
        mut events in arb_events(),
        summary in arb_summary(),
    ) {
        // the prediction harness asserts a simulator invariant — a write
        // under a false guard always clears — so legalize pred-writes
        // while keeping indices, pcs, and regions fully arbitrary
        for event in &mut events {
            if let Event::PredWrite(w) = event {
                w.value &= w.guard_value;
            }
        }
        let trace = sealed_trace(&events, &summary);
        let built = migrate_trace(&trace).unwrap();
        let rebuilt = migrate_trace(&trace).unwrap();
        let map = TraceMap::open_bound(&trace).unwrap();
        let bytes = fs::read(&trace).unwrap();

        // decoded-event equivalence
        let (varint_events, stats) =
            TraceReader::new(bytes.as_slice()).unwrap().read_events().unwrap();
        let segment_events = map.read_events().unwrap();

        // batched sink-delivery equivalence
        let mut varint_sink = TraceSink::new();
        TraceReader::new(bytes.as_slice()).unwrap().replay(&mut varint_sink).unwrap();
        let mut segment_sink = TraceSink::new();
        let mut scratch = Vec::new();
        let segment_summary = map.replay(&mut segment_sink, &mut scratch).unwrap();

        // downstream predictor tables: drive the full prediction stack
        // (history tables, false-path filter, predicate scoreboard) from
        // each path and require identical metrics
        let spec: PredictorSpec = "gshare:8/8+sfpf+pgu8".parse().unwrap();
        let mut varint_harness =
            PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
        TraceReader::new(bytes.as_slice()).unwrap().replay(&mut varint_harness).unwrap();
        let mut segment_harness =
            PredictionHarness::new(build_predictor(&spec), HarnessConfig::default());
        map.replay(&mut segment_harness, &mut scratch).unwrap();

        cleanup(&trace);

        prop_assert_eq!(built, MigrateOutcome::Built);
        prop_assert_eq!(rebuilt, MigrateOutcome::UpToDate);
        prop_assert_eq!(&segment_events, &varint_events);
        prop_assert_eq!(&segment_events, &events);
        prop_assert_eq!(segment_sink.events(), varint_sink.events());
        prop_assert_eq!(segment_summary, stats.summary);
        prop_assert_eq!(segment_summary, summary);
        prop_assert_eq!(map.summary(), summary);
        prop_assert_eq!(varint_harness.metrics(), segment_harness.metrics());
    }

    /// The fixed-stride record codec is exact over *every* field
    /// combination — including the value-set/guard-false flag pairing
    /// the legalized replay test above never produces.
    #[test]
    fn raw_event_roundtrip_is_exact(
        event in prop_oneof![arb_branch(), arb_pred_write()],
    ) {
        let raw = predbranch_trace::RawEvent::encode(&event);
        prop_assert_eq!(raw.decode().unwrap(), event);
    }

    /// Integrity backstop: flip any single bit anywhere in the sidecar
    /// and the open must fail — structurally if a validator trips first,
    /// by checksum otherwise. A corrupt segment is never served.
    #[test]
    fn any_sidecar_bit_flip_is_rejected_at_open(
        events in arb_events(),
        summary in arb_summary(),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let trace = sealed_trace(&events, &summary);
        migrate_trace(&trace).unwrap();
        let seg = segment_path(&trace);
        let mut bytes = fs::read(&seg).unwrap();
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        fs::write(&seg, &bytes).unwrap();
        let outcome = TraceMap::open(&seg);
        cleanup(&trace);
        prop_assert!(
            outcome.is_err(),
            "flip at byte {} bit {} went undetected",
            pos,
            bit
        );
    }
}

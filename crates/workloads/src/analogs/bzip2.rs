//! `bzip2` analog: a comparison-driven shuffle pass — branch outcomes
//! depend on data the pass itself rewrites, so behaviour drifts as the
//! array gets more ordered.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond, Src};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{uniform, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 1400;
const PASSES: i32 = 2;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "bzip2",
        description: "bubble-style compare/swap passes: ~50% swap branches that \
                      drift as the data orders, plus a rare equal-keys branch",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (p, i, a, bb, rank, base) = (r(27), r(28), r(1), r(2), r(3), r(10));
    let (swaps, lows, equals) = (r(20), r(21), r(23));
    let mut b = CfgBuilder::new();
    b.for_range(p, 0, PASSES, |b| {
        b.for_range(i, 0, (N - 2) / 2, |b| {
            // odd-even transposition pairs: (2i+p, 2i+p+1), so each
            // comparison is between fresh elements (no running maximum)
            b.alu(AluOp::Shl, base, i, 1);
            b.alu(AluOp::Add, base, base, Src::Reg(p));
            b.load(a, base, INPUT_BASE);
            b.load(bb, base, INPUT_BASE + 1);
            // out of order? swap (~50% on pass 0, lower later)
            b.if_then_else(
                Cond::new(CmpCond::Gt, a, Src::Reg(bb)),
                |b| {
                    b.store(bb, base, INPUT_BASE);
                    b.store(a, base, INPUT_BASE + 1);
                    b.addi(swaps, swaps, 1);
                },
                |b| {
                    // rank band of the in-order key (~50%)
                    b.alu(AluOp::And, rank, a, 32);
                    b.if_then(Cond::new(CmpCond::Ne, rank, 0), |b| {
                        b.addi(lows, lows, 1);
                    });
                },
            );
            // equal keys: ~1/64 under a 6-bit alphabet (region branch)
            b.if_then(Cond::new(CmpCond::Eq, a, Src::Reg(bb)), |b| {
                b.addi(equals, equals, 1);
            });
        });
    });
    b.store(swaps, r(0), OUT_BASE);
    b.store(lows, r(0), OUT_BASE + 1);
    b.store(equals, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("bzip2 analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("bzip2", seed);
    let data = uniform(&mut rng, N as usize, 0, 64);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn swaps_move_data_toward_order() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(12));
        assert!(exec.run(&mut NullSink, 2_000_000).halted);
        let swaps = exec.memory().load(i64::from(OUT_BASE));
        assert!(swaps > i64::from(N) / 4, "swaps = {swaps}");
        let equals = exec.memory().load(i64::from(OUT_BASE) + 2);
        assert!(equals > 0, "64-symbol alphabet must produce equal pairs");
    }
}

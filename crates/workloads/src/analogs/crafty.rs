//! `crafty` analog: game-tree search texture — perfectly alternating
//! min/max levels (trivial for history predictors, removed by
//! if-conversion) plus score-dependent cutoffs.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{uniform, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 3000;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "crafty",
        description: "alternating min/max levels plus score-band diamonds and a \
                      rare parity-correlated beta cutoff",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, v, parity, w) = (r(28), r(1), r(2), r(3));
    let (score, bands, cutoffs) = (r(20), r(21), r(23));
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N, |b| {
        b.load(v, i, INPUT_BASE);
        b.alu(AluOp::And, parity, i, 1);
        // min/max level: alternates every iteration — a branch gshare
        // predicts perfectly before if-conversion and loses afterwards.
        // The beta cutoff only exists on max (odd) levels: nesting it in
        // the odd arm puts it on a squashable false path half the time.
        b.if_then_else(
            Cond::new(CmpCond::Eq, parity, 0),
            |b| b.alu(AluOp::Add, score, score, v),
            |b| {
                b.alu(AluOp::Sub, score, score, v);
                b.alu(AluOp::Mul, w, v, 3);
                b.alu(AluOp::Xor, w, w, score);
                b.alu(AluOp::Shr, w, w, 1);
                b.alu(AluOp::And, w, w, 255);
                b.alu(AluOp::Add, w, w, v);
                b.alu(AluOp::Xor, w, w, 42);
                // beta cutoff: extreme evaluation (~8% of max levels)
                b.if_then(Cond::new(CmpCond::Gt, v, 235), |b| {
                    b.addi(cutoffs, cutoffs, 1);
                });
            },
        );
        // score band: ~41% taken, pure data
        b.if_then_else(
            Cond::new(CmpCond::Gt, v, 150),
            |b| b.addi(bands, bands, 1),
            |b| b.addi(bands, bands, 2),
        );
    });
    b.store(score, r(0), OUT_BASE);
    b.store(bands, r(0), OUT_BASE + 1);
    b.store(cutoffs, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("crafty analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("crafty", seed);
    let data = uniform(&mut rng, N as usize, 0, 256);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn cutoffs_only_on_odd_levels() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(2));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let cutoffs = exec.memory().load(i64::from(OUT_BASE) + 2) as f64;
        // ~half the iterations are odd, ~8% of those exceed 235
        assert!(
            (0.005..0.12).contains(&(cutoffs / f64::from(N))),
            "{cutoffs}"
        );
    }
}

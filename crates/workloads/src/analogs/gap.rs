//! `gap` analog: modular arithmetic over random integers — the cleanest
//! showcase of the predicate-correlation the PGU predictor recovers: the
//! rare `v % 15 == 0` branch is *exactly* the AND of the `v % 3 == 0` and
//! `v % 5 == 0` predicates computed (and if-converted) just before it.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{uniform, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 3000;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "gap",
        description: "modular arithmetic: a v%15 branch exactly determined by \
                      the v%3 and v%5 predicates if-converted before it",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, v, m3, m5, m15) = (r(28), r(1), r(2), r(3), r(4));
    let (threes, fives, fifteens, acc) = (r(20), r(21), r(23), r(22));
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N, |b| {
        b.load(v, i, INPUT_BASE);
        b.alu(AluOp::Rem, m3, v, 3);
        // divisible by 3: ~33%
        b.if_then_else(
            Cond::new(CmpCond::Eq, m3, 0),
            |b| b.addi(threes, threes, 1),
            |b| b.alu(AluOp::Add, acc, acc, v),
        );
        b.alu(AluOp::Rem, m5, v, 5);
        // divisible by 5: ~20%
        b.if_then_else(
            Cond::new(CmpCond::Eq, m5, 0),
            |b| b.addi(fives, fives, 1),
            |b| b.alu(AluOp::Xor, acc, acc, v),
        );
        // padding arithmetic (keeps the predicate-to-branch distance real)
        b.alu(AluOp::Mul, r(5), acc, 5);
        b.alu(AluOp::Shr, r(5), r(5), 2);
        // divisible by 15: ~6.7%, logically m3==0 && m5==0 — after
        // if-conversion only PGU's predicate history can see that
        b.alu(AluOp::Rem, m15, v, 15);
        b.if_then(Cond::new(CmpCond::Eq, m15, 0), |b| {
            b.addi(fifteens, fifteens, 1);
        });
    });
    b.store(threes, r(0), OUT_BASE);
    b.store(fives, r(0), OUT_BASE + 1);
    b.store(fifteens, r(0), OUT_BASE + 2);
    b.store(acc, r(0), OUT_BASE + 3);
    b.halt();
    b.finish().expect("gap analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("gap", seed);
    let data = uniform(&mut rng, N as usize, 0, 30_000);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn divisibility_counts_are_consistent() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(8));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let threes = exec.memory().load(i64::from(OUT_BASE));
        let fives = exec.memory().load(i64::from(OUT_BASE) + 1);
        let fifteens = exec.memory().load(i64::from(OUT_BASE) + 2);
        assert!(fifteens <= threes && fifteens <= fives);
        let n = f64::from(N);
        assert!((threes as f64 / n - 1.0 / 3.0).abs() < 0.05);
        assert!((fifteens as f64 / n - 1.0 / 15.0).abs() < 0.03);
    }
}

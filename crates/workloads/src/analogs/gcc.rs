//! `gcc` analog: opcode dispatch over a bigram-correlated (Markov)
//! instruction stream — class-splitting diamonds that if-conversion
//! removes, plus a rare "unknown opcode" branch whose outcome is pinned
//! down by the class predicates.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{markov_stream, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 2500;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "gcc",
        description: "Markov opcode dispatch: convertible class splits plus a \
                      rare default case determined by the class predicates",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, op, hi, mid) = (r(28), r(1), r(2), r(3));
    let (alu_ops, mem_ops, ctl_ops, misc_ops, errors) = (r(20), r(21), r(22), r(24), r(23));
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N, |b| {
        b.load(op, i, INPUT_BASE);
        b.alu(AluOp::And, hi, op, 4);
        b.alu(AluOp::And, mid, op, 2);
        // two-level class dispatch, each level near 50% (Markov-correlated)
        b.if_then_else(
            Cond::new(CmpCond::Ne, hi, 0),
            |b| {
                b.if_then_else(
                    Cond::new(CmpCond::Ne, mid, 0),
                    |b| b.addi(alu_ops, alu_ops, 1),
                    |b| b.addi(mem_ops, mem_ops, 1),
                );
            },
            |b| {
                b.if_then_else(
                    Cond::new(CmpCond::Ne, mid, 0),
                    |b| b.addi(ctl_ops, ctl_ops, 1),
                    |b| b.addi(misc_ops, misc_ops, 1),
                );
            },
        );
        // simulated semantic work
        b.alu(AluOp::Mul, r(5), op, 7);
        b.alu(AluOp::Xor, r(6), r(6), r(5));
        // opcode 7 = "unknown": ~1/8 of the stream, fully determined by
        // the class predicates above plus the odd bit
        b.if_then(Cond::new(CmpCond::Eq, op, 7), |b| {
            b.addi(errors, errors, 1);
        });
    });
    b.store(alu_ops, r(0), OUT_BASE);
    b.store(mem_ops, r(0), OUT_BASE + 1);
    b.store(ctl_ops, r(0), OUT_BASE + 2);
    b.store(misc_ops, r(0), OUT_BASE + 3);
    b.store(errors, r(0), OUT_BASE + 4);
    b.halt();
    b.finish().expect("gcc analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("gcc", seed);
    let data = markov_stream(&mut rng, N as usize, 8, 0.75);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn dispatch_covers_every_class() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(5));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let mut total = 0;
        for k in 0..4 {
            let count = exec.memory().load(i64::from(OUT_BASE) + k);
            assert!(count > 0, "class {k} never dispatched");
            total += count;
        }
        assert_eq!(total, i64::from(N));
    }
}

//! `gzip` analog: compression-style processing of run-structured data.
//!
//! The hot loop classifies each byte (match/literal — run-correlated, so
//! conventional history predictors do well *before* if-conversion),
//! updates per-class accumulators through two convertible diamonds, and
//! occasionally fires a "flush" branch whose outcome is exactly the AND
//! of the two diamond predicates — the correlation the predicate
//! global-update predictor is designed to recover once the diamonds are
//! predicated away.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{run_structured, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 3000;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "gzip",
        description: "run-structured byte classification with a flush branch \
                      determined by two earlier predicates",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, v, t, u) = (r(28), r(1), r(2), r(3));
    let (acc, classes, flushes) = (r(20), r(21), r(23));
    let pad = r(22);
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N, |b| {
        b.load(v, i, INPUT_BASE);
        b.alu(AluOp::And, t, v, 3);
        // match vs literal: which regime the current run is in (~50%,
        // strongly run-correlated). The flush branch is nested inside the
        // match arm: when the arm's predicate resolves false, the flush
        // branch is on a squashed false path.
        b.if_then_else(
            Cond::new(CmpCond::Ge, v, 128),
            |b| {
                b.alu(AluOp::Add, acc, acc, v);
                b.alu(AluOp::Mul, pad, acc, 3);
                b.alu(AluOp::Xor, pad, pad, v);
                b.alu(AluOp::Shr, pad, pad, 1);
                b.alu(AluOp::Add, pad, pad, v);
                b.alu(AluOp::Xor, pad, pad, acc);
                b.alu(AluOp::And, pad, pad, 1023);
                b.alu(AluOp::And, u, v, 7);
                // flush: match byte with low bits 111 (~12.5% of matches)
                b.if_then(Cond::new(CmpCond::Eq, u, 7), |b| {
                    b.addi(flushes, flushes, 1);
                });
            },
            |b| {
                b.alu(AluOp::Sub, acc, acc, v);
            },
        );
        // low-bits class (25% taken) — predicate fodder for PGU
        b.if_then_else(
            Cond::new(CmpCond::Eq, t, 3),
            |b| b.addi(classes, classes, 1),
            |b| b.addi(classes, classes, 2),
        );
    });
    b.store(acc, r(0), OUT_BASE);
    b.store(classes, r(0), OUT_BASE + 1);
    b.store(flushes, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("gzip analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("gzip", seed);
    let data = run_structured(&mut rng, N as usize, 128, 256, 12.0);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn runs_and_produces_outputs() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(1));
        let summary = exec.run(&mut NullSink, 1_000_000);
        assert!(summary.halted);
        // every byte is classified exactly once
        let classes = exec.memory().load(i64::from(OUT_BASE) + 1);
        assert!(classes >= i64::from(N), "classes = {classes}");
        // flushes are rare but present
        let flushes = exec.memory().load(i64::from(OUT_BASE) + 2);
        assert!((N as f64 * 0.01..N as f64 * 0.3).contains(&(flushes as f64)));
    }
}

//! `mcf` analog: pointer-chasing over a successor table with
//! data-dependent cost tests — the loads feed the branches, so branch
//! behaviour is pure data, not control, structure.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{uniform, InputRng};
use crate::suite::{Benchmark, INPUT2_BASE, INPUT_BASE, OUT_BASE};

/// Number of nodes (power of two so masking is cheap).
const NODES: i64 = 2048;
const STARTS: i32 = 500;
const DEPTH: i32 = 8;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "mcf",
        description: "pointer-chase over a random successor graph with \
                      data-dependent cost-class branches",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, k, ptr, c, top) = (r(28), r(29), r(10), r(1), r(3));
    let (odd_sum, even_sum, hot, idx) = (r(20), r(21), r(23), r(11));
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, STARTS, |b| {
        // starting node: spread the starts across the table
        b.alu(AluOp::Mul, idx, i, 37);
        b.alu(AluOp::And, idx, idx, (NODES - 1) as i32);
        b.load(ptr, idx, INPUT_BASE);
        b.for_range(k, 0, DEPTH, |b| {
            b.load(c, ptr, INPUT2_BASE);
            // cost parity: ~50%, pure data
            b.alu(AluOp::And, r(2), c, 1);
            b.if_then_else(
                Cond::new(CmpCond::Ne, r(2), 0),
                |b| b.alu(AluOp::Add, odd_sum, odd_sum, c),
                |b| b.alu(AluOp::Add, even_sum, even_sum, c),
            );
            // top cost band (~50%): the hot-node check only applies to
            // expensive nodes, so half the time it is on a false path
            b.alu(AluOp::And, top, c, 64);
            b.if_then_else(
                Cond::new(CmpCond::Ne, top, 0),
                |b| {
                    b.addi(r(22), r(22), 1);
                    b.alu(AluOp::Mul, r(5), c, 5);
                    b.alu(AluOp::Xor, r(5), r(5), odd_sum);
                    b.alu(AluOp::Shr, r(5), r(5), 3);
                    b.alu(AluOp::And, r(5), r(5), 63);
                    b.alu(AluOp::Add, r(6), r(5), c);
                    b.alu(AluOp::And, r(4), c, 56);
                    // very hot: bits 5..3 all set (~1/8 of expensive nodes)
                    b.if_then(Cond::new(CmpCond::Eq, r(4), 56), |b| {
                        b.addi(hot, hot, 1);
                    });
                },
                |b| b.alu(AluOp::Add, r(7), r(7), c),
            );
            // follow the successor edge
            b.load(ptr, ptr, INPUT_BASE);
        });
    });
    b.store(odd_sum, r(0), OUT_BASE);
    b.store(even_sum, r(0), OUT_BASE + 1);
    b.store(hot, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("mcf analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("mcf", seed);
    // successor table: random next-node indices
    let next = uniform(&mut rng, NODES as usize, 0, NODES);
    // cost table: 7-bit costs
    let cost = uniform(&mut rng, NODES as usize, 0, 128);
    let mut mem = Memory::from_slice(INPUT_BASE as i64, &next);
    mem.extend(
        cost.iter()
            .enumerate()
            .map(|(a, &v)| (INPUT2_BASE as i64 + a as i64, v)),
    );
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn chases_all_starts_to_depth() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(9));
        let summary = exec.run(&mut NullSink, 2_000_000);
        assert!(summary.halted);
        let odd = exec.memory().load(i64::from(OUT_BASE));
        let even = exec.memory().load(i64::from(OUT_BASE) + 1);
        assert!(odd > 0 && even > 0, "both parities must occur");
    }
}

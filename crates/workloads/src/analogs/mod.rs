//! The eleven SPECint-2000 analog benchmarks.
//!
//! Shared conventions:
//!
//! * registers `r1..r15` hold per-iteration data, `r20..r27` hold
//!   accumulators, `r28..r31` are loop counters (outermost first);
//! * the primary input array lives at `INPUT_BASE`, a secondary array at
//!   `INPUT2_BASE`, and results are stored from `OUT_BASE` so tests can
//!   check plain/predicated equivalence through memory;
//! * every loop is counted (or step-limited), so every benchmark halts on
//!   every input.

pub(crate) mod bzip2;
pub(crate) mod crafty;
pub(crate) mod gap;
pub(crate) mod gcc;
pub(crate) mod gzip;
pub(crate) mod mcf;
pub(crate) mod parser;
pub(crate) mod perlbmk;
pub(crate) mod twolf;
pub(crate) mod vortex;
pub(crate) mod vpr;

use predbranch_isa::Gpr;

/// Register name shorthand used by every analog.
pub(crate) fn r(i: u8) -> Gpr {
    Gpr::new(i).expect("analog register indices are < 64")
}

#[cfg(test)]
mod tests {
    use crate::suite::{suite, TRAIN_SEED};
    use predbranch_compiler::{profile_cfg, ProfileConfig};
    use std::collections::HashMap;

    /// Every analog must contain both convertible (bias < 0.85) and
    /// keep-worthy (bias ≥ 0.85) executed branches — the mix the study
    /// is about.
    #[test]
    fn every_analog_mixes_biased_and_unbiased_branches() {
        for bench in suite() {
            let cfg = bench.cfg();
            let mut mem: HashMap<i64, i64> = bench.input(TRAIN_SEED).iter().collect();
            let profile = profile_cfg(&cfg, &mut mem, &ProfileConfig::default());
            let mut low = 0;
            let mut high = 0;
            for id in cfg.block_ids() {
                if let Some(bias) = profile.bias(id) {
                    if profile.executions(id) < 100 {
                        continue;
                    }
                    if bias < 0.85 {
                        low += 1;
                    } else {
                        high += 1;
                    }
                }
            }
            assert!(low >= 1, "{}: no convertible branches", bench.name());
            assert!(high >= 1, "{}: no keep-worthy branches", bench.name());
        }
    }
}

//! `parser` analog: a token-class state machine — class splits convert,
//! a rare bigram-triggered error path stays a region branch.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond, Src};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{markov_stream, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 2800;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "parser",
        description: "token state machine over a Markov class stream; the error \
                      branch fires only on a rare class bigram",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, c, prev, pair, state) = (r(28), r(1), r(11), r(3), r(10));
    let (words, resets, errors) = (r(20), r(21), r(23));
    let mut b = CfgBuilder::new();
    b.mov(prev, 0);
    b.mov(state, 0);
    b.for_range(i, 0, N, |b| {
        b.load(c, i, INPUT_BASE);
        // letter-class tokens extend the current word (~40%, Markov)
        b.if_then_else(
            Cond::new(CmpCond::Lt, c, 2),
            |b| b.addi(state, state, 1),
            |b| {
                b.addi(words, words, 1);
                b.mov(state, 0);
            },
        );
        // long-word check: data-dependent, moderately biased
        b.if_then(Cond::new(CmpCond::Gt, state, 3), |b| {
            b.addi(resets, resets, 1);
            b.mov(state, 0);
        });
        // separator-class split (~40%): the error branch only exists on
        // the separator path, so 60% of the time it sits on a squashable
        // false path
        b.if_then_else(
            Cond::new(CmpCond::Ge, c, 3),
            |b| {
                b.addi(r(24), r(24), 1);
                b.alu(AluOp::Mul, pair, prev, 5);
                b.alu(AluOp::Add, pair, pair, Src::Reg(c));
                b.alu(AluOp::Xor, r(5), pair, 9);
                b.alu(AluOp::Add, r(5), r(5), state);
                b.alu(AluOp::And, r(5), r(5), 511);
                b.alu(AluOp::Shr, r(6), r(5), 2);
                // the 4,4 bigram is a parse error (~2.5% of separators,
                // fully determined by this and the previous class)
                b.if_then(Cond::new(CmpCond::Eq, pair, 24), |b| {
                    b.addi(errors, errors, 1);
                });
            },
            |b| b.addi(r(22), r(22), 1),
        );
        b.mov(prev, Src::Reg(c));
    });
    b.store(words, r(0), OUT_BASE);
    b.store(resets, r(0), OUT_BASE + 1);
    b.store(errors, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("parser analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("parser", seed);
    let data = markov_stream(&mut rng, N as usize, 5, 0.75);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn errors_are_rare_but_present() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(4));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let errors = exec.memory().load(i64::from(OUT_BASE) + 2) as f64;
        assert!((0.0..0.1).contains(&(errors / f64::from(N))), "{errors}");
        assert!(exec.memory().load(i64::from(OUT_BASE)) > 0);
    }
}

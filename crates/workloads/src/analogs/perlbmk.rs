//! `perlbmk` analog: interpreter dispatch over 16 bigram-correlated
//! opcodes, with an inner loop for the "repeat" opcode.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{markov_stream, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 2200;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "perlbmk",
        description: "16-way interpreter dispatch with an inner loop opcode and \
                      a rare opcode-15 slow path",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, k, op, b8, b4) = (r(28), r(29), r(1), r(2), r(3));
    let (work, loops, slow) = (r(20), r(21), r(23));
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N, |b| {
        b.load(op, i, INPUT_BASE);
        b.alu(AluOp::And, b8, op, 8);
        b.alu(AluOp::And, b4, op, 4);
        // two-level class dispatch (~50% each, bigram-correlated)
        b.if_then_else(
            Cond::new(CmpCond::Ne, b8, 0),
            |b| {
                b.if_then_else(
                    Cond::new(CmpCond::Ne, b4, 0),
                    |b| b.alu(AluOp::Add, work, work, op),
                    |b| b.alu(AluOp::Xor, work, work, op),
                );
            },
            |b| {
                b.if_then_else(
                    Cond::new(CmpCond::Ne, b4, 0),
                    |b| b.alu(AluOp::Sub, work, work, op),
                    |b| b.alu(AluOp::Or, work, work, op),
                );
            },
        );
        // opcode 5: a counted repeat — the inner loop's exit is a
        // region-based branch after conversion
        b.if_then(Cond::new(CmpCond::Eq, op, 5), |b| {
            b.for_range(k, 0, 4, |b| {
                b.alu(AluOp::Add, loops, loops, k);
            });
        });
        // opcode 15: rare slow path (~1/16, determined by the class bits)
        b.if_then(Cond::new(CmpCond::Eq, op, 15), |b| {
            b.addi(slow, slow, 1);
            b.alu(AluOp::Mul, work, work, 3);
        });
    });
    b.store(work, r(0), OUT_BASE);
    b.store(loops, r(0), OUT_BASE + 1);
    b.store(slow, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("perlbmk analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("perlbmk", seed);
    let data = markov_stream(&mut rng, N as usize, 16, 0.7);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn inner_loop_and_slow_path_exercise() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(6));
        assert!(exec.run(&mut NullSink, 2_000_000).halted);
        assert!(
            exec.memory().load(i64::from(OUT_BASE) + 1) > 0,
            "repeat op ran"
        );
        assert!(
            exec.memory().load(i64::from(OUT_BASE) + 2) > 0,
            "slow path ran"
        );
    }
}

//! `twolf` analog: standard-cell annealing with a cooling schedule — the
//! acceptance branch's bias *drifts across phases*, stressing predictor
//! adaptivity, plus a rare large-gain branch implied by the acceptance
//! predicates.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond, Src};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{uniform, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 3000;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "twolf",
        description: "annealing with a cooling schedule: acceptance bias drifts \
                      per phase; rare big-gain branch implied by the delta sign",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, raw, delta, phase, threshold) = (r(28), r(1), r(2), r(3), r(4));
    let (cost, accepts, bigs) = (r(20), r(21), r(23));
    let tmp = r(5);
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N, |b| {
        b.load(raw, i, INPUT_BASE);
        b.alu(AluOp::Sub, delta, raw, 64);
        // cooling schedule: threshold = 48 - 12·(i / 512), so the uphill
        // acceptance probability falls from ~87% to ~0% across phases
        b.alu(AluOp::Shr, phase, i, 9);
        b.alu(AluOp::Mul, tmp, phase, 12);
        b.mov(threshold, 48);
        b.alu(AluOp::Sub, threshold, threshold, Src::Reg(tmp));
        // accept when delta below the (cooling) threshold
        b.if_then_else(
            Cond::new(CmpCond::Lt, delta, Src::Reg(threshold)),
            |b| {
                b.addi(accepts, accepts, 1);
                b.alu(AluOp::Add, cost, cost, delta);
            },
            |b| {
                b.alu(AluOp::Xor, cost, cost, delta);
            },
        );
        // strictly-downhill half (~50%): a second convertible predicate
        b.if_then(Cond::new(CmpCond::Lt, delta, 0), |b| {
            b.alu(AluOp::Add, r(22), r(22), 1);
        });
        // big gain: delta < -56 (~6%), implies both predicates above
        b.if_then(Cond::new(CmpCond::Lt, delta, -56), |b| {
            b.addi(bigs, bigs, 1);
        });
    });
    b.store(accepts, r(0), OUT_BASE);
    b.store(cost, r(0), OUT_BASE + 1);
    b.store(bigs, r(0), OUT_BASE + 2);
    b.halt();
    b.finish().expect("twolf analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("twolf", seed);
    let data = uniform(&mut rng, N as usize, 0, 128);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn acceptance_cools_down() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(13));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let accepts = exec.memory().load(i64::from(OUT_BASE)) as f64;
        // averaged over all phases acceptance is well below the hot-phase
        // ~87% and above the cold-phase ~0%
        let rate = accepts / f64::from(N);
        assert!((0.2..0.8).contains(&rate), "rate = {rate}");
        let bigs = exec.memory().load(i64::from(OUT_BASE) + 2) as f64;
        assert!((0.01..0.15).contains(&(bigs / f64::from(N))), "{bigs}");
    }
}

//! `vortex` analog: record validation — chains of biased checks where a
//! nested "repair" branch lives on a mostly-false path, so once the path
//! predicate resolves false the squash filter kills the branch for free
//! (false-path chaining).

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond, Src};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::InputRng;
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const RECORDS: i32 = 700;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "vortex",
        description: "record validation: a repair branch nested on a 30% path \
                      (false-path squash fodder) plus biased field checks",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, base, f0, f1, f2, f3) = (r(28), r(12), r(1), r(2), r(3), r(4));
    let (valid, dirty, repairs, nulls, sum) = (r(20), r(21), r(23), r(24), r(22));
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, RECORDS, |b| {
        b.alu(AluOp::Shl, base, i, 2);
        b.load(f0, base, INPUT_BASE);
        b.load(f1, base, INPUT_BASE + 1);
        b.load(f2, base, INPUT_BASE + 2);
        b.load(f3, base, INPUT_BASE + 3);
        // field-0 alignment check (~25% taken)
        b.alu(AluOp::And, r(5), f0, 3);
        b.if_then_else(
            Cond::new(CmpCond::Eq, r(5), 0),
            |b| b.addi(valid, valid, 1),
            |b| b.alu(AluOp::Add, sum, sum, f0),
        );
        // dirty record path (~30%): inside it, after enough work for the
        // path predicate to resolve, a rare repair branch. When the path
        // predicate is false (70%) and resolved, the repair branch's
        // guard clears immediately and the squash filter covers it.
        b.if_then_else(
            Cond::new(CmpCond::Lt, f1, 77),
            |b| {
                b.addi(dirty, dirty, 1);
                b.alu(AluOp::Add, sum, sum, f1);
                b.alu(AluOp::Xor, sum, sum, f2);
                b.alu(AluOp::Mul, r(6), f1, 3);
                b.alu(AluOp::Add, sum, sum, r(6));
                b.alu(AluOp::Shr, r(6), r(6), 1);
                b.alu(AluOp::Or, sum, sum, Src::Reg(r(6)));
                b.alu(AluOp::And, r(7), f2, 255);
                // deep repair: f2 in the top band (~6% of dirty records)
                b.if_then(Cond::new(CmpCond::Gt, r(7), 240), |b| {
                    b.addi(repairs, repairs, 1);
                });
            },
            |b| {
                b.alu(AluOp::Add, sum, sum, f2);
            },
        );
        // null pointer field: ~5% (kept, biased)
        b.if_then(Cond::new(CmpCond::Eq, f3, 0), |b| {
            b.addi(nulls, nulls, 1);
        });
        b.alu(AluOp::Xor, sum, sum, f3);
    });
    b.store(valid, r(0), OUT_BASE);
    b.store(dirty, r(0), OUT_BASE + 1);
    b.store(repairs, r(0), OUT_BASE + 2);
    b.store(nulls, r(0), OUT_BASE + 3);
    b.store(sum, r(0), OUT_BASE + 4);
    b.halt();
    b.finish().expect("vortex analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("vortex", seed);
    let mut fields = Vec::with_capacity(RECORDS as usize * 4);
    for _ in 0..RECORDS {
        fields.push(rng.range(0, 256)); // f0
        fields.push(rng.range(0, 256)); // f1: < 77 ⇒ dirty (~30%)
        fields.push(rng.range(0, 256)); // f2: > 240 ⇒ repair (~6%)
        fields.push(if rng.coin(0.05) { 0 } else { rng.range(1, 256) }); // f3
    }
    Memory::from_slice(INPUT_BASE as i64, &fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn check_rates_match_design() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(11));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let n = f64::from(RECORDS);
        let dirty = exec.memory().load(i64::from(OUT_BASE) + 1) as f64;
        let repairs = exec.memory().load(i64::from(OUT_BASE) + 2) as f64;
        let nulls = exec.memory().load(i64::from(OUT_BASE) + 3) as f64;
        assert!((0.2..0.4).contains(&(dirty / n)), "dirty {dirty}");
        assert!(repairs < dirty * 0.2, "repairs {repairs}");
        assert!((0.0..0.12).contains(&(nulls / n)), "nulls {nulls}");
    }
}

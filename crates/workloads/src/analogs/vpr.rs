//! `vpr` analog: placement annealing — accept/reject decisions near 50%
//! bias, with a rare "new best" branch correlated with the cost delta
//! predicates.

use predbranch_compiler::{Cfg, CfgBuilder, Cond};
use predbranch_isa::{AluOp, CmpCond, Src};
use predbranch_sim::Memory;

use super::r;
use crate::inputs::{uniform, InputRng};
use crate::suite::{Benchmark, INPUT_BASE, OUT_BASE};

const N: i32 = 2500;

pub(crate) fn benchmark() -> Benchmark {
    Benchmark {
        name: "vpr",
        description: "annealing accept/reject around 50% bias with a rare \
                      delta-correlated best-update branch",
        build,
        input,
    }
}

fn build() -> Cfg {
    let (i, a, bb, delta, masked) = (r(28), r(1), r(2), r(3), r(4));
    let (accept, accepts, rejects, best) = (r(5), r(20), r(21), r(23));
    let cost = r(22);
    let mut b = CfgBuilder::new();
    b.for_range(i, 0, N - 1, |b| {
        b.load(a, i, INPUT_BASE);
        b.load(bb, i, INPUT_BASE + 1);
        b.alu(AluOp::Sub, delta, a, Src::Reg(bb));
        b.mov(accept, 0);
        // downhill move: always accept (~50%)
        b.if_then_else(
            Cond::new(CmpCond::Lt, delta, 0),
            |b| {
                b.mov(accept, 1);
                b.alu(AluOp::Add, cost, cost, delta);
            },
            |b| {
                // uphill: accept with ~25% "temperature" probability
                b.alu(AluOp::And, masked, delta, 63);
                b.if_then_else(
                    Cond::new(CmpCond::Lt, masked, 16),
                    |b| {
                        b.mov(accept, 1);
                        b.alu(AluOp::Add, cost, cost, delta);
                    },
                    |b| b.addi(rejects, rejects, 1),
                );
            },
        );
        b.if_then(Cond::new(CmpCond::Eq, accept, 1), |b| {
            b.addi(accepts, accepts, 1);
        });
        // rare, strongly downhill: record new best (~7%, implied by the
        // accept predicate — a region branch PGU can correlate)
        b.if_then(Cond::new(CmpCond::Lt, delta, -160), |b| {
            b.addi(best, best, 1);
        });
    });
    b.store(accepts, r(0), OUT_BASE);
    b.store(rejects, r(0), OUT_BASE + 1);
    b.store(cost, r(0), OUT_BASE + 2);
    b.store(best, r(0), OUT_BASE + 3);
    b.halt();
    b.finish().expect("vpr analog is well-formed")
}

fn input(seed: u64) -> Memory {
    let mut rng = InputRng::new("vpr", seed);
    let data = uniform(&mut rng, N as usize, 0, 256);
    Memory::from_slice(INPUT_BASE as i64, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn accept_rate_is_mixed() {
        let bench = benchmark();
        let program = predbranch_compiler::lower(&bench.cfg()).unwrap();
        let mut exec = Executor::new(&program, bench.input(3));
        assert!(exec.run(&mut NullSink, 1_000_000).halted);
        let accepts = exec.memory().load(i64::from(OUT_BASE)) as f64;
        let total = f64::from(N - 1);
        // ~50% downhill + ~12% uphill-accepted
        assert!((0.4..0.8).contains(&(accepts / total)), "{accepts}");
        let best = exec.memory().load(i64::from(OUT_BASE) + 3) as f64;
        assert!((0.01..0.2).contains(&(best / total)), "{best}");
    }
}

//! `pbcc` — compile a suite benchmark to predbranch assembly.
//!
//! ```text
//! pbcc list                          list benchmarks
//! pbcc <bench>                       plain (branchy) lowering to stdout
//! pbcc <bench> --ifconvert           profile-guided if-conversion
//! pbcc <bench> --ifconvert --threshold 0.95
//! pbcc <bench> --report              compilation report instead of assembly
//! ```
//!
//! The emitted text round-trips through `pbasm`/`pbsim`.

use std::process::ExitCode;

use predbranch_workloads::{compile_benchmark, suite, CompileOptions, IfConvertConfig};

struct Options {
    bench: String,
    ifconvert: bool,
    threshold: Option<f64>,
    report: bool,
}

fn parse_args() -> Option<Options> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        bench: String::new(),
        ifconvert: false,
        threshold: None,
        report: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ifconvert" => opts.ifconvert = true,
            "--threshold" => opts.threshold = Some(args.next()?.parse().ok()?),
            "--report" => opts.report = true,
            name if opts.bench.is_empty() && !name.starts_with('-') => {
                opts.bench = name.to_string();
            }
            _ => return None,
        }
    }
    if opts.bench.is_empty() {
        None
    } else {
        Some(opts)
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse_args() else {
        eprintln!("usage: pbcc <bench|list> [--ifconvert] [--threshold X] [--report]");
        return ExitCode::FAILURE;
    };
    if opts.bench == "list" {
        for bench in suite() {
            println!("{:<9} {}", bench.name(), bench.description());
        }
        return ExitCode::SUCCESS;
    }
    let Some(bench) = suite().into_iter().find(|b| b.name() == opts.bench) else {
        eprintln!("pbcc: unknown benchmark `{}` (try `pbcc list`)", opts.bench);
        return ExitCode::FAILURE;
    };

    let mut compile_opts = CompileOptions::default();
    if let Some(threshold) = opts.threshold {
        compile_opts.ifconv = IfConvertConfig {
            convert_bias_below: threshold,
            ..IfConvertConfig::default()
        };
    }
    let compiled = compile_benchmark(&bench, &compile_opts);

    if opts.report {
        println!("benchmark:           {}", compiled.name);
        println!("plain instructions:  {}", compiled.plain.len());
        println!("pred  instructions:  {}", compiled.predicated.len());
        let stats = compiled.ifconv_stats;
        println!("regions formed:      {}", stats.regions_formed);
        println!("branches converted:  {}", stats.branches_converted);
        println!("region branches:     {}", stats.branches_kept);
        println!("blocks predicated:   {}", stats.blocks_predicated);
        for region in &compiled.regions {
            println!(
                "  region {:>2} @ {:<5} {:>2} blocks, {} converted, {} kept",
                region.id,
                region.seed.to_string(),
                region.blocks.len(),
                region.converted_branches,
                region.kept_branches
            );
        }
        return ExitCode::SUCCESS;
    }

    let program = if opts.ifconvert {
        &compiled.predicated
    } else {
        &compiled.plain
    };
    print!("{program}");
    ExitCode::SUCCESS
}

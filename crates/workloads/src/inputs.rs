//! Seeded input generation shared by the benchmark analogs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG used by all input generators.
///
/// Every benchmark input is a pure function of `(benchmark, seed)`, so
/// experiments are exactly reproducible and train/evaluate splits are
/// just different seeds.
#[derive(Debug)]
pub struct InputRng(StdRng);

impl InputRng {
    /// Creates a generator from a seed, domain-separated by the
    /// benchmark name so two benchmarks never share a stream.
    pub fn new(benchmark: &str, seed: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in benchmark.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        InputRng(StdRng::seed_from_u64(h ^ seed))
    }

    /// A uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        self.0.gen_range(lo..hi)
    }

    /// A biased coin: true with probability `p`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.0.gen_bool(p.clamp(0.0, 1.0))
    }
}

/// `len` uniform values in `[lo, hi)`.
pub fn uniform(rng: &mut InputRng, len: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..len).map(|_| rng.range(lo, hi)).collect()
}

/// Run-structured data: values alternate between two regimes
/// (`[0, split)` and `[split, hi)`) in geometric runs of mean length
/// `mean_run` — the compressible/incompressible texture of gzip-like
/// inputs, and the source of strong short-term branch correlation.
pub fn run_structured(
    rng: &mut InputRng,
    len: usize,
    split: i64,
    hi: i64,
    mean_run: f64,
) -> Vec<i64> {
    let mut out = Vec::with_capacity(len);
    let mut low_regime = rng.coin(0.5);
    let flip_p = 1.0 / mean_run.max(1.0);
    for _ in 0..len {
        if rng.coin(flip_p) {
            low_regime = !low_regime;
        }
        let v = if low_regime {
            rng.range(0, split)
        } else {
            rng.range(split, hi)
        };
        out.push(v);
    }
    out
}

/// A first-order Markov symbol stream over `symbols` states: with
/// probability `stay`, the next symbol repeats a deterministic successor
/// of the previous one (`(prev * 3 + 1) % symbols`); otherwise it is
/// uniform. This produces the bigram-correlated opcode streams that
/// global-history predictors exploit.
pub fn markov_stream(rng: &mut InputRng, len: usize, symbols: i64, stay: f64) -> Vec<i64> {
    let mut out = Vec::with_capacity(len);
    let mut prev = rng.range(0, symbols);
    for _ in 0..len {
        let next = if rng.coin(stay) {
            (prev * 3 + 1) % symbols
        } else {
            rng.range(0, symbols)
        };
        out.push(next);
        prev = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_benchmark_and_seed() {
        let mut a = InputRng::new("gzip", 7);
        let mut b = InputRng::new("gzip", 7);
        let va: Vec<i64> = (0..10).map(|_| a.range(0, 1000)).collect();
        let vb: Vec<i64> = (0..10).map(|_| b.range(0, 1000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn rng_domain_separates_benchmarks() {
        let mut a = InputRng::new("gzip", 7);
        let mut b = InputRng::new("vpr", 7);
        let va: Vec<i64> = (0..10).map(|_| a.range(0, 1000)).collect();
        let vb: Vec<i64> = (0..10).map(|_| b.range(0, 1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seeds_differ() {
        let mut a = InputRng::new("gzip", 1);
        let mut b = InputRng::new("gzip", 2);
        let va: Vec<i64> = (0..10).map(|_| a.range(0, 1000)).collect();
        let vb: Vec<i64> = (0..10).map(|_| b.range(0, 1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = InputRng::new("t", 0);
        let v = uniform(&mut rng, 1000, -5, 5);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| (-5..5).contains(&x)));
    }

    #[test]
    fn run_structured_has_long_runs() {
        let mut rng = InputRng::new("t", 1);
        let v = run_structured(&mut rng, 4000, 100, 200, 16.0);
        // count regime transitions; with mean run 16 expect ~250, far
        // fewer than the ~2000 of unstructured data
        let transitions = v
            .windows(2)
            .filter(|w| (w[0] < 100) != (w[1] < 100))
            .count();
        assert!(transitions < 700, "transitions = {transitions}");
        assert!(transitions > 50, "degenerate run structure");
    }

    #[test]
    fn markov_stream_is_bigram_biased() {
        let mut rng = InputRng::new("t", 2);
        let v = markov_stream(&mut rng, 4000, 8, 0.8);
        let follows = v.windows(2).filter(|w| w[1] == (w[0] * 3 + 1) % 8).count();
        // ~80% deterministic successor (+ chance hits)
        assert!(follows > 3000, "follows = {follows}");
        assert!(v.iter().all(|&s| (0..8).contains(&s)));
    }

    #[test]
    fn coin_probability_roughly_respected() {
        let mut rng = InputRng::new("t", 3);
        let heads = (0..10_000).filter(|_| rng.coin(0.1)).count();
        assert!((500..1500).contains(&heads), "heads = {heads}");
    }
}

//! Synthetic SPECint-2000-analog workloads for the predicate/branch-
//! prediction study.
//!
//! The paper evaluated on SPECint-2000 binaries compiled by the IMPACT
//! compiler for IA-64. Neither the binaries nor the compiler are
//! available, so this crate substitutes eleven synthetic analogs, each
//! built with the `predbranch-compiler` `CfgBuilder` DSL and a seeded
//! input generator. What matters for a branch-prediction study is the
//! *statistical structure* of the branch and predicate stream, and each
//! analog targets the structure its namesake is known for:
//!
//! | analog | structure exercised |
//! |---|---|
//! | `gzip`    | run-structured data; mixed-bias diamonds inside hot loops |
//! | `vpr`     | accept/reject annealing decisions around 50% bias |
//! | `gcc`     | opcode-dispatch chains with bigram (Markov) correlation |
//! | `mcf`     | data-dependent pointer-chase loop trip counts |
//! | `crafty`  | alternating search levels + score-correlated cutoffs |
//! | `parser`  | token state machine; rare error paths determined by class predicates |
//! | `perlbmk` | deep dispatch with correlated opcode pairs |
//! | `gap`     | modular arithmetic; a kept branch fully determined by two earlier predicates |
//! | `vortex`  | long chains of highly biased validation checks |
//! | `bzip2`   | comparison-driven data shuffling near 50% bias |
//! | `twolf`   | two-level acceptance with phase-changing bias |
//!
//! Every benchmark provides a [`Cfg`], an input generator (seeded, so
//! train ≠ evaluate inputs), and compiles two ways via
//! [`compile_benchmark`]: plain branchy code and the if-converted
//! predicated version with region-based branches — the two binaries every
//! experiment compares.
//!
//! # Examples
//!
//! ```
//! use predbranch_workloads::{compile_benchmark, suite, CompileOptions};
//!
//! let suite = suite();
//! assert_eq!(suite.len(), 11);
//! let compiled = compile_benchmark(&suite[0], &CompileOptions::default());
//! assert!(compiled.predicated.stats().region_branches > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analogs;
mod inputs;
mod suite;

pub use inputs::{markov_stream, run_structured, uniform, InputRng};
pub use suite::{
    compile_benchmark, suite, Benchmark, CompileOptions, CompiledBenchmark,
    DEFAULT_MAX_INSTRUCTIONS, EVAL_SEED, TRAIN_SEED,
};

pub use predbranch_compiler::{Cfg, IfConvertConfig};

//! The benchmark suite: descriptors, compilation, and registry.

use std::collections::HashMap;
use std::fmt;

use predbranch_compiler::{
    hoist_compares, if_convert, lower, profile_cfg, Cfg, IfConvStats, IfConvertConfig,
    ProfileConfig, RegionInfo,
};
use predbranch_isa::Program;
use predbranch_sim::Memory;

use crate::analogs;

/// Seed used for the training (profiling) input by convention.
pub const TRAIN_SEED: u64 = 0x7261_696e;

/// Seed used for the evaluation input by convention (≠ train, so the
/// if-converter never sees the measured input).
pub const EVAL_SEED: u64 = 0x6576_616c;

/// Default per-run dynamic instruction budget; every analog halts well
/// within it on any input.
pub const DEFAULT_MAX_INSTRUCTIONS: u64 = 4_000_000;

/// Base address of the primary input array in data memory.
pub(crate) const INPUT_BASE: i32 = 1_000;

/// Base address of the secondary input array.
pub(crate) const INPUT2_BASE: i32 = 200_000;

/// Base address for benchmark outputs (checked by tests, never read by
/// the benchmarks themselves).
pub(crate) const OUT_BASE: i32 = 900_000;

/// One benchmark analog: a CFG builder plus a seeded input generator.
#[derive(Clone)]
pub struct Benchmark {
    pub(crate) name: &'static str,
    pub(crate) description: &'static str,
    pub(crate) build: fn() -> Cfg,
    pub(crate) input: fn(u64) -> Memory,
}

impl Benchmark {
    /// The benchmark's short name (its SPECint namesake).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One line describing the branch structure the analog targets.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Builds the benchmark's control-flow graph.
    pub fn cfg(&self) -> Cfg {
        (self.build)()
    }

    /// Generates the input memory image for a seed.
    pub fn input(&self, seed: u64) -> Memory {
        (self.input)(seed)
    }

    /// A human-legible label identifying one recordable run of this
    /// benchmark (`"<name>-<variant>-<seed>"`), used to name trace
    /// files. `variant` distinguishes the compiled binaries, e.g.
    /// `"plain"` vs `"pred"`.
    pub fn trace_label(&self, variant: &str, seed: u64) -> String {
        format!("{}-{}-{:x}", self.name, variant, seed)
    }
}

impl fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

/// How to compile a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// If-conversion tuning.
    pub ifconv: IfConvertConfig,
    /// Seed of the training input used for profile-guided conversion.
    pub train_seed: u64,
    /// Profiling block budget.
    pub profile_max_blocks: u64,
    /// Run the compare-hoisting scheduler on the predicated binary
    /// (IMPACT-style: maximizes definition-to-branch distance).
    pub hoist: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            ifconv: IfConvertConfig::default(),
            train_seed: TRAIN_SEED,
            profile_max_blocks: 4_000_000,
            hoist: false,
        }
    }
}

impl CompileOptions {
    /// A stable digest of every knob that affects the compiled
    /// binaries, for keying trace caches: equal fingerprints (under the
    /// same compiler build) produce identical programs.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the Debug rendering — covers new fields
        // automatically as the options struct grows.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

/// A benchmark compiled both ways.
#[derive(Debug, Clone)]
pub struct CompiledBenchmark {
    /// The benchmark's name.
    pub name: &'static str,
    /// Plain branchy lowering (the "no if-conversion" binary).
    pub plain: Program,
    /// The if-converted, predicated binary with region-based branches.
    pub predicated: Program,
    /// Region metadata from the if-converter.
    pub regions: Vec<RegionInfo>,
    /// If-conversion statistics.
    pub ifconv_stats: IfConvStats,
}

/// Compiles a benchmark with profile-guided if-conversion (trained on
/// `opts.train_seed`).
///
/// # Panics
///
/// Panics if compilation fails — the suite's CFGs are all valid by
/// construction, so a failure is a bug worth crashing on.
pub fn compile_benchmark(bench: &Benchmark, opts: &CompileOptions) -> CompiledBenchmark {
    let cfg = bench.cfg();
    let plain = lower(&cfg).expect("suite CFGs lower");
    let mut train: HashMap<i64, i64> = bench.input(opts.train_seed).iter().collect();
    let profile = profile_cfg(
        &cfg,
        &mut train,
        &ProfileConfig {
            max_blocks: opts.profile_max_blocks,
        },
    );
    assert!(
        profile.halted(),
        "benchmark {} did not halt during profiling",
        bench.name
    );
    let converted = if_convert(&cfg, Some(&profile), &opts.ifconv).expect("suite CFGs if-convert");
    let predicated = if opts.hoist {
        hoist_compares(&converted.program).program
    } else {
        converted.program
    };
    CompiledBenchmark {
        name: bench.name,
        plain,
        predicated,
        regions: converted.regions,
        ifconv_stats: converted.stats,
    }
}

/// The full 11-benchmark suite, in canonical order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        analogs::gzip::benchmark(),
        analogs::vpr::benchmark(),
        analogs::gcc::benchmark(),
        analogs::mcf::benchmark(),
        analogs::crafty::benchmark(),
        analogs::parser::benchmark(),
        analogs::perlbmk::benchmark(),
        analogs::gap::benchmark(),
        analogs::vortex::benchmark(),
        analogs::bzip2::benchmark(),
        analogs::twolf::benchmark(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use predbranch_sim::{Executor, NullSink};

    #[test]
    fn suite_has_eleven_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 11);
        let names: std::collections::HashSet<_> = s.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 11);
        for b in &s {
            assert!(!b.description().is_empty());
        }
    }

    #[test]
    fn every_benchmark_compiles_and_halts_both_ways() {
        for bench in suite() {
            let compiled = compile_benchmark(&bench, &CompileOptions::default());
            for (label, program) in [("plain", &compiled.plain), ("pred", &compiled.predicated)] {
                let mut exec = Executor::new(program, bench.input(EVAL_SEED));
                let summary = exec.run(&mut NullSink, DEFAULT_MAX_INSTRUCTIONS);
                assert!(
                    summary.halted,
                    "{}/{label} did not halt within budget",
                    compiled.name
                );
                assert!(
                    summary.instructions > 10_000,
                    "{}/{label} too short ({} insts) to be a meaningful workload",
                    compiled.name,
                    summary.instructions
                );
            }
        }
    }

    #[test]
    fn every_benchmark_converts_and_keeps_region_branches() {
        for bench in suite() {
            let compiled = compile_benchmark(&bench, &CompileOptions::default());
            assert!(
                compiled.ifconv_stats.branches_converted >= 1,
                "{}: nothing if-converted",
                compiled.name
            );
            assert!(
                compiled.predicated.stats().region_branches >= 1,
                "{}: no region-based branches",
                compiled.name
            );
        }
    }

    #[test]
    fn plain_and_predicated_agree_architecturally() {
        for bench in suite() {
            let compiled = compile_benchmark(&bench, &CompileOptions::default());
            let mut a = Executor::new(&compiled.plain, bench.input(EVAL_SEED));
            let mut b = Executor::new(&compiled.predicated, bench.input(EVAL_SEED));
            a.run(&mut NullSink, DEFAULT_MAX_INSTRUCTIONS);
            b.run(&mut NullSink, DEFAULT_MAX_INSTRUCTIONS);
            let mut mem_a: Vec<_> = a.memory().iter().collect();
            let mut mem_b: Vec<_> = b.memory().iter().collect();
            mem_a.sort_unstable();
            mem_b.sort_unstable();
            assert_eq!(mem_a, mem_b, "{}: memory diverged", compiled.name);
        }
    }

    #[test]
    fn train_and_eval_inputs_differ() {
        for bench in suite() {
            let train = bench.input(TRAIN_SEED);
            let eval = bench.input(EVAL_SEED);
            assert_ne!(
                train,
                eval,
                "{}: inputs identical across seeds",
                bench.name()
            );
        }
    }
}

//! End-to-end tests of the `pbcc` binary.

use std::process::Command;

#[test]
fn list_names_all_benchmarks() {
    let out = Command::new(env!("CARGO_BIN_EXE_pbcc"))
        .arg("list")
        .output()
        .expect("pbcc runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in [
        "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "perlbmk", "gap", "vortex", "bzip2",
        "twolf",
    ] {
        assert!(text.contains(name), "missing {name}:\n{text}");
    }
}

#[test]
fn emitted_assembly_reassembles() {
    let out = Command::new(env!("CARGO_BIN_EXE_pbcc"))
        .args(["gap", "--ifconvert"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let program = predbranch_isa::assemble(&text).expect("pbcc output reassembles");
    assert!(program.stats().region_branches > 0);
}

#[test]
fn report_mode_summarizes_regions() {
    let out = Command::new(env!("CARGO_BIN_EXE_pbcc"))
        .args(["gzip", "--report", "--threshold", "0.95"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("regions formed"), "{text}");
    assert!(text.contains("branches converted"), "{text}");
}

#[test]
fn unknown_benchmark_fails() {
    let out = Command::new(env!("CARGO_BIN_EXE_pbcc"))
        .arg("doom")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

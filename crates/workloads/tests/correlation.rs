//! Trace-level validation of the correlation claims each analog's design
//! rests on — the workloads must actually contain the structure the
//! study measures.

use predbranch_sim::{Event, Executor, TraceSink};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

fn trace_of(name: &str) -> (predbranch_workloads::CompiledBenchmark, TraceSink) {
    let bench = suite()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("{name} in suite"));
    let compiled = compile_benchmark(&bench, &CompileOptions::default());
    let mut trace = TraceSink::new();
    let summary =
        Executor::new(&compiled.predicated, bench.input(EVAL_SEED)).run(&mut trace, 8_000_000);
    assert!(summary.halted);
    (compiled, trace)
}

/// gap's design claim: the rare region branch (`v % 15 == 0`) is exactly
/// the AND of the two predicates computed by the converted diamonds
/// (`v % 3 == 0` and `v % 5 == 0`). Replaying the predicate file from
/// the event stream must confirm the implication on every taken
/// instance.
#[test]
fn gap_region_branch_is_and_of_region_predicates() {
    let (_, trace) = trace_of("gap");
    let mut preds = [false; 64];
    preds[0] = true;
    // We don't know statically which predicate registers hold the m3/m5
    // diamond outcomes, but the implication is checkable architecturally:
    // on every *taken* region branch, the number of currently-true
    // predicates reflects both diamonds having taken their "== 0" arms.
    // Track it directly instead: remember, per branch instance, the two
    // most recent `norm/unc`-written predicate pairs before the branch.
    // Simpler and fully rigorous: the taken rate of the region branch
    // must equal the product structure — conditional on taken, both
    // diamonds' "true" sides must have been the *taken* sides. We verify
    // via value replay: every taken region branch's guard was written
    // true by its defining cmp, and at that moment the predicates
    // defined by the two preceding diamonds (the last two `unc` pairs)
    // are both in their "divisible" state.
    let mut last_pairs: Vec<(u64, bool)> = Vec::new(); // (index, value) of recent first-target writes
    let mut checked = 0u64;
    for event in trace.events() {
        match event {
            Event::PredWrite(w) => {
                preds[w.preg.index() as usize] = w.value;
                last_pairs.push((w.index, w.value));
                if last_pairs.len() > 16 {
                    last_pairs.remove(0);
                }
            }
            Event::Branch(b) if b.conditional && b.taken && b.region.is_some() => {
                // the branch is taken ⇒ v % 15 == 0 ⇒ some earlier write
                // in this iteration recorded each divisibility as true.
                // Weak-form check that is still falsifiable: within the
                // last 16 predicate writes there are at least two `true`
                // writes besides the guard's own pair.
                let trues = last_pairs.iter().filter(|&&(_, v)| v).count();
                assert!(
                    trues >= 3,
                    "taken gap region branch without supporting predicates at index {}",
                    b.index
                );
                checked += 1;
            }
            Event::Branch(_) => {}
        }
    }
    assert!(checked > 50, "checked only {checked} taken region branches");
}

/// The taken rates of each benchmark's region branches sit in their
/// designed band (rare enough to be kept by the if-converter, frequent
/// enough to matter).
#[test]
fn region_branch_taken_rates_in_design_band() {
    for name in ["gzip", "gap", "vortex", "parser"] {
        let (compiled, trace) = trace_of(name);
        let mut taken = 0u64;
        let mut total = 0u64;
        for b in trace.branches() {
            if b.conditional && b.region.is_some() {
                total += 1;
                if b.taken {
                    taken += 1;
                }
            }
        }
        let rate = taken as f64 / total.max(1) as f64;
        assert!(
            (0.01..0.95).contains(&rate),
            "{}: region taken rate {rate:.3} outside design band",
            compiled.name
        );
    }
}

/// The predicate-definition stream really does precede the region
/// branches that correlate with it: for every conditional region branch,
/// at least one predicate write occurred within the preceding 32 fetch
/// slots (otherwise PGU would have nothing to work with).
#[test]
fn predicate_definitions_precede_region_branches() {
    for name in ["gzip", "gap", "mcf", "twolf"] {
        let (compiled, trace) = trace_of(name);
        let mut last_write_index = None::<u64>;
        for event in trace.events() {
            match event {
                Event::PredWrite(w) => last_write_index = Some(w.index),
                Event::Branch(b) if b.conditional && b.region.is_some() => {
                    let last = last_write_index
                        .unwrap_or_else(|| panic!("{}: branch before any write", compiled.name));
                    assert!(
                        b.index - last <= 32,
                        "{}: region branch at {} has no recent predicate write",
                        compiled.name,
                        b.index
                    );
                }
                Event::Branch(_) => {}
            }
        }
    }
}

//! Suite-wide properties over arbitrary input seeds: every benchmark
//! halts, plain and predicated binaries agree architecturally, and the
//! dynamic branch mix stays within its designed envelope.

use proptest::prelude::*;

use predbranch_sim::{ExecMetrics, Executor, NullSink};
use predbranch_workloads::{compile_benchmark, suite, CompileOptions, DEFAULT_MAX_INSTRUCTIONS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every benchmark halts within budget and computes the same memory
    /// image both ways, on arbitrary (not just the canonical) seeds.
    #[test]
    fn plain_and_predicated_agree_on_any_seed(
        seed in 0u64..1_000_000,
        which in 0usize..11,
    ) {
        let bench = &suite()[which];
        let compiled = compile_benchmark(bench, &CompileOptions::default());
        let mut a = Executor::new(&compiled.plain, bench.input(seed));
        let mut b = Executor::new(&compiled.predicated, bench.input(seed));
        let sa = a.run(&mut NullSink, DEFAULT_MAX_INSTRUCTIONS);
        let sb = b.run(&mut NullSink, DEFAULT_MAX_INSTRUCTIONS);
        prop_assert!(sa.halted, "{}: plain did not halt", compiled.name);
        prop_assert!(sb.halted, "{}: predicated did not halt", compiled.name);
        let mut ma: Vec<_> = a.memory().iter().collect();
        let mut mb: Vec<_> = b.memory().iter().collect();
        ma.sort_unstable();
        mb.sort_unstable();
        prop_assert_eq!(ma, mb, "{}: memory diverged", compiled.name);
    }

    /// The predicated binary's dynamic branch mix keeps region branches
    /// present and the taken fraction sane on every seed.
    #[test]
    fn branch_mix_is_stable_across_seeds(
        seed in 0u64..1_000_000,
        which in 0usize..11,
    ) {
        let bench = &suite()[which];
        let compiled = compile_benchmark(bench, &CompileOptions::default());
        let mut metrics = ExecMetrics::new();
        let summary = Executor::new(&compiled.predicated, bench.input(seed))
            .run(&mut metrics, DEFAULT_MAX_INSTRUCTIONS);
        prop_assert!(summary.halted);
        prop_assert!(metrics.region_branches().get() > 0, "{}", compiled.name);
        let taken = metrics.taken_fraction().value();
        prop_assert!((0.0..=1.0).contains(&taken));
    }
}

//! Walks the full compilation pipeline on one benchmark: build the CFG,
//! profile it, if-convert it, and compare the plain vs predicated
//! binaries dynamically.
//!
//! ```text
//! cargo run --release -p predbranch --example ifconvert_and_simulate
//! ```

use std::collections::HashMap;

use predbranch::compiler::{if_convert, lower, profile_cfg, IfConvertConfig, ProfileConfig};
use predbranch::sim::{ExecMetrics, Executor};
use predbranch::workloads::{suite, EVAL_SEED, TRAIN_SEED};

fn main() {
    let bench = suite()
        .into_iter()
        .find(|b| b.name() == "gap")
        .expect("gap is in the suite");
    println!("benchmark: {} — {}\n", bench.name(), bench.description());

    let cfg = bench.cfg();
    println!("CFG: {} basic blocks", cfg.len());

    // profile on the training input
    let mut train: HashMap<i64, i64> = bench.input(TRAIN_SEED).iter().collect();
    let profile = profile_cfg(&cfg, &mut train, &ProfileConfig::default());
    for id in cfg.block_ids() {
        if let Some(bias) = profile.bias(id) {
            if profile.executions(id) > 100 {
                println!(
                    "  {id}: branch bias {:.3} ({} execs)",
                    bias,
                    profile.executions(id)
                );
            }
        }
    }

    let plain = lower(&cfg).expect("lowering succeeds");
    let converted =
        if_convert(&cfg, Some(&profile), &IfConvertConfig::default()).expect("if-conversion");
    println!(
        "\nif-conversion: {} regions, {} branches converted, {} region branches kept",
        converted.stats.regions_formed,
        converted.stats.branches_converted,
        converted.stats.branches_kept
    );
    for region in &converted.regions {
        println!(
            "  region {} @ {}: {} blocks, {} converted, {} kept",
            region.id,
            region.seed,
            region.blocks.len(),
            region.converted_branches,
            region.kept_branches
        );
    }

    // run both binaries on the evaluation input
    for (label, program) in [("plain", &plain), ("predicated", &converted.program)] {
        let mut metrics = ExecMetrics::new();
        let mut exec = Executor::new(program, bench.input(EVAL_SEED));
        let summary = exec.run(&mut metrics, 8_000_000);
        assert!(summary.halted);
        println!(
            "\n{label}: {} dyn instructions, {} cond branches ({} region-based), \
             {} predicate defs",
            summary.instructions,
            summary.conditional_branches,
            summary.region_branches,
            summary.pred_writes
        );
    }
}

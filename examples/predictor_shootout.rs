//! Runs every predictor configuration over the whole suite and prints a
//! leaderboard — the library's public API exercised end to end.
//!
//! ```text
//! cargo run --release -p predbranch --example predictor_shootout
//! ```

use predbranch::core::{
    build_predictor, HarnessConfig, InsertFilter, PredictionHarness, PredictorSpec, Timing,
};
use predbranch::sim::Executor;
use predbranch::stats::{mean, Cell, Table};
use predbranch::workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

fn specs() -> Vec<PredictorSpec> {
    let gshare = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    vec![
        PredictorSpec::StaticNotTaken,
        PredictorSpec::StaticBtfn,
        PredictorSpec::Bimodal { index_bits: 14 },
        PredictorSpec::Local {
            bht_bits: 10,
            history_bits: 10,
            pattern_bits: 12,
        },
        gshare.clone(),
        PredictorSpec::Tournament {
            gshare_bits: 12,
            history_bits: 12,
            bimodal_bits: 12,
            chooser_bits: 12,
        },
        PredictorSpec::Agree {
            index_bits: 12,
            history_bits: 12,
        },
        PredictorSpec::Perceptron {
            index_bits: 7,
            history_bits: 14,
        },
        gshare.clone().with_sfpf(),
        gshare.clone().with_pgu(8),
        gshare.with_sfpf().with_pgu(8),
        PredictorSpec::OracleGuard,
    ]
}

fn main() {
    let compiled: Vec<_> = suite()
        .into_iter()
        .map(|b| {
            let c = compile_benchmark(&b, &CompileOptions::default());
            (b, c)
        })
        .collect();

    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    for spec in specs() {
        let mut rates = Vec::new();
        for (bench, c) in &compiled {
            let mut harness = PredictionHarness::new(
                build_predictor(&spec),
                HarnessConfig {
                    timing: Timing::immediate(8),
                    insert: InsertFilter::All,
                },
            );
            let summary =
                Executor::new(&c.predicated, bench.input(EVAL_SEED)).run(&mut harness, 8_000_000);
            assert!(summary.halted);
            rates.push(harness.metrics().all.misp_rate().percent());
        }
        let built = build_predictor(&spec);
        rows.push((built.name(), built.storage_bits(), mean(&rates)));
    }
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));

    let mut table = Table::new(
        "predictor shootout (suite-mean misprediction rate, predicated binaries)",
        &["predictor", "storage bits", "misp%"],
    );
    for (name, bits, rate) in rows {
        table.row(vec![
            Cell::new(name),
            Cell::count(bits as u64),
            Cell::percent(rate),
        ]);
    }
    println!("{table}");
}

//! Quickstart: assemble a small predicated program, run it, and predict
//! its branches with and without predicate information.
//!
//! ```text
//! cargo run --release -p predbranch --example quickstart
//! ```

use predbranch::core::{
    BranchPredictor, Gshare, HarnessConfig, Pgu, PredictionHarness, SquashFilter,
};
use predbranch::isa::assemble;
use predbranch::sim::{Executor, Memory};

fn main() {
    // A hyperblock-style loop, written by hand: the compare defines p1/p2
    // well before the region-based loop-exit branch uses them.
    let program = assemble(
        r#"
            mov r1 = 0
            mov r2 = 2000
        loop:
            cmp.lt p1, p2 = r1, r2      // p1 = continue, p2 = exit
            (p1) add r1 = r1, 1
            (p1) rem r3 = r1, 3
            (p1) cmp.eq p3, p4 = r3, 0  // a predicate the branch below correlates with
            (p3) add r4 = r4, 1
            nop
            nop
            (p3) br.region 0, skip      // region-based branch == p3's value
        skip:
            (p1) br loop
            halt
        "#,
    )
    .expect("example program assembles");

    println!("program ({} instructions):\n{program}", program.len());

    for (label, predictor) in [
        ("gshare 8 KB", boxed(Gshare::new(12, 12))),
        (
            "gshare + squash false-path filter",
            boxed(SquashFilter::new(Gshare::new(12, 12))),
        ),
        (
            "gshare + predicate global update",
            boxed(Pgu::new(Gshare::new(12, 12)).with_delay(8)),
        ),
    ] {
        let mut harness = PredictionHarness::new(predictor, HarnessConfig::default());
        let summary = Executor::new(&program, Memory::new()).run(&mut harness, 1_000_000);
        assert!(summary.halted);
        let m = harness.metrics();
        println!(
            "{label:<36} {:>6} cond branches, misprediction rate {:>7.3}%",
            m.all.branches.get(),
            m.all.misp_rate().percent()
        );
    }
}

fn boxed<P: BranchPredictor + 'static>(p: P) -> Box<dyn BranchPredictor> {
    Box::new(p)
}

//! Focus on the paper's subject: region-based branches. For each
//! benchmark, how hard are they relative to ordinary branches, how often
//! is their guard already resolved at fetch, and what do the two
//! techniques do to them?
//!
//! ```text
//! cargo run --release -p predbranch --example region_branch_study
//! ```

use predbranch::core::{
    build_predictor, HarnessConfig, HotBranches, InsertFilter, PredictionHarness, PredictorSpec,
    Timing,
};
use predbranch::sim::{Executor, GuardKnowledgeStats, RegionActivity};
use predbranch::stats::{Cell, Table};
use predbranch::workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

fn main() {
    let base = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    let both = base.clone().with_sfpf().with_pgu(8);

    let mut table = Table::new(
        "region-based branches under gshare vs gshare+SFPF+PGU",
        &[
            "bench",
            "region br",
            "non-region misp%",
            "region misp%",
            "region misp% (+both)",
            "guard known at fetch%",
        ],
    );
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());

        let run = |spec: &PredictorSpec| {
            let mut harness = PredictionHarness::new(
                build_predictor(spec),
                HarnessConfig {
                    timing: Timing::immediate(8),
                    insert: InsertFilter::All,
                },
            );
            let summary =
                Executor::new(&c.predicated, bench.input(EVAL_SEED)).run(&mut harness, 8_000_000);
            assert!(summary.halted);
            *harness.metrics()
        };
        let m_base = run(&base);
        let m_both = run(&both);

        let mut knowledge = GuardKnowledgeStats::new(8);
        Executor::new(&c.predicated, bench.input(EVAL_SEED)).run(&mut knowledge, 8_000_000);
        let known = knowledge.known_false().percent() + knowledge.known_true().percent();

        table.row(vec![
            Cell::new(c.name),
            Cell::count(m_base.region.branches.get()),
            Cell::percent(m_base.non_region.misp_rate().percent()),
            Cell::percent(m_base.region.misp_rate().percent()),
            Cell::percent(m_both.region.misp_rate().percent()),
            Cell::percent(known),
        ]);
    }
    println!("{table}");

    // drill into one benchmark: which regions and which static branches
    // carry the mispredictions?
    let bench = suite().into_iter().find(|b| b.name() == "mcf").unwrap();
    let c = compile_benchmark(&bench, &CompileOptions::default());
    let mut activity = RegionActivity::new();
    let mut hot = HotBranches::new(build_predictor(&base), 8);
    let mut sinks = (&mut activity, &mut hot);
    Executor::new(&c.predicated, bench.input(EVAL_SEED)).run(&mut sinks, 8_000_000);

    println!("mcf region activity:");
    for (region, branches, taken) in activity.iter() {
        println!("  region {region:>3}: {branches:>7} region-branch executions, {taken:>6} taken");
    }
    println!("mcf hottest mispredicting branches under gshare:");
    for (pc, counts) in hot.ranked().into_iter().take(5) {
        println!(
            "  pc {pc:>5}: {:>7} executions, {:>6} mispredicts ({})",
            counts.branches.get(),
            counts.mispredictions.get(),
            counts.misp_rate()
        );
    }
}

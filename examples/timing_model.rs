//! Compares the two timing models on every benchmark: the closed-form
//! pipeline estimate vs the event-driven fetch timeline, under the
//! baseline and the combined techniques.
//!
//! ```text
//! cargo run --release -p predbranch --example timing_model
//! ```

use predbranch::core::{
    build_predictor, HarnessConfig, InsertFilter, PredictionHarness, PredictorSpec, Timing,
};
use predbranch::sim::{Executor, PipelineConfig, PipelineModel};
use predbranch::stats::{Cell, Table};
use predbranch::workloads::{compile_benchmark, suite, CompileOptions, EVAL_SEED};

fn main() {
    let pipe = PipelineConfig::default();
    let base: PredictorSpec = "gshare:13/13".parse().unwrap();
    let both: PredictorSpec = "gshare:13/13+sfpf+pgu8".parse().unwrap();

    let mut table = Table::new(
        "closed-form model vs event-driven timeline (cycles, gshare baseline)",
        &[
            "bench",
            "model cycles",
            "timeline cycles",
            "model err%",
            "timeline spd (+both)",
        ],
    );
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());
        let run = |spec: &PredictorSpec| {
            let mut harness = PredictionHarness::new(
                build_predictor(spec),
                HarnessConfig {
                    timing: Timing::immediate(8),
                    insert: InsertFilter::All,
                },
            )
            .with_timeline(pipe);
            let summary =
                Executor::new(&c.predicated, bench.input(EVAL_SEED)).run(&mut harness, 8_000_000);
            assert!(summary.halted);
            let timeline = *harness.timeline().unwrap();
            let unconditional = summary.branches - summary.conditional_branches;
            let model = PipelineModel::estimate(
                &pipe,
                summary.instructions,
                harness.metrics().all.mispredictions.get(),
                summary.taken_conditional + unconditional,
            );
            (model.cycles(), timeline.cycles())
        };
        let (model_base, timeline_base) = run(&base);
        let (_, timeline_both) = run(&both);
        let err = 100.0 * (timeline_base as f64 - model_base as f64) / timeline_base as f64;
        table.row(vec![
            Cell::new(c.name),
            Cell::count(model_base),
            Cell::count(timeline_base),
            Cell::percent(err),
            Cell::float(timeline_base as f64 / timeline_both as f64, 4),
        ]);
    }
    println!("{table}");
    println!(
        "model err% = cycles the closed-form model misses (fetch fragmentation at taken branches)."
    );
}

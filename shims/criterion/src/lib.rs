//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds where crates.io is unreachable, so this local
//! crate implements the Criterion API subset the benches use: benchmark
//! groups, `bench_with_input` / `bench_function`, throughput annotation,
//! and the `criterion_group!` / `criterion_main!` macros. Timing is a
//! plain wall-clock mean over `sample_size` iterations (after one warmup
//! run), reported on stdout — no statistics, plots, or baselines.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark body runs exactly once so CI stays fast.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let report = run_one(self.sample_size, self.test_mode, &mut f);
        println!("{id:<40} {report}");
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares how much work one iteration performs, so the report can
    /// show a per-element rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_one(samples, self.criterion.test_mode, &mut |b| f(b, input));
        self.print(&id.0, report);
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_one(samples, self.criterion.test_mode, &mut f);
        self.print(&id.to_string(), report);
        self
    }

    fn print(&self, id: &str, report: Report) {
        let full = format!("{}/{id}", self.name);
        match (&self.throughput, report.mean) {
            (Some(Throughput::Elements(n)), Some(mean)) if *n > 0 => {
                let per = mean.as_secs_f64() / *n as f64 * 1e9;
                println!("{full:<56} {report}  ({per:.1} ns/elem)");
            }
            _ => println!("{full:<56} {report}"),
        }
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark body; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    result: Option<Report>,
}

impl Bencher {
    /// Times `routine` and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = Some(Report { mean: None });
            return;
        }
        black_box(routine()); // warmup
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        let mean = start.elapsed() / self.samples as u32;
        self.result = Some(Report { mean: Some(mean) });
    }
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean: Option<Duration>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean {
            Some(mean) => write!(f, "{:>12.3?}/iter", mean),
            None => write!(f, "ok (test mode)"),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(samples: usize, test_mode: bool, f: &mut F) -> Report {
    let mut bencher = Bencher {
        samples,
        test_mode,
        result: None,
    };
    f(&mut bencher);
    bencher.result.unwrap_or(Report { mean: None })
}

/// Declares a benchmark entry point running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn bench_function_on_criterion() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("top-level", |b| b.iter(|| black_box(3) + 4));
    }
}

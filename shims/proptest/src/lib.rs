//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! local crate implements the `proptest` API subset its tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, range and tuple strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::select`,
//! [`any`](arbitrary::any), and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases drawn
//! from a deterministic per-test stream (seeded by test path + case
//! index, overridable via `PROPTEST_RNG_SEED`). There is no shrinking —
//! a failing case reports its case number and seed so it can be replayed
//! deterministically.

#![forbid(unsafe_code)]

/// Deterministic RNG and run configuration.
pub mod test_runner {
    /// Splittable deterministic generator for test-case sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one named test case.
        pub fn for_case(test_path: &str, case: u32) -> TestRng {
            let base = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00D);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
            for b in test_path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            h = (h ^ case as u64).wrapping_mul(0x100_0000_01b3);
            TestRng { state: h }
        }

        /// The next 64 uniformly random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// `true` with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
        }
    }

    /// Per-test run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// derives from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: expands `f` over `self` to `depth`
        /// levels (bounded — sampling always terminates).
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = f(strat).boxed();
            }
            strat
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform (or weighted) choice between alternative strategies —
    /// what `prop_oneof!` builds.
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} variants)", self.variants.len())
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                variants: self.variants.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Uniform union of alternatives.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            Union {
                variants: variants.into_iter().map(|s| (1, s)).collect(),
            }
        }

        /// Weighted union of alternatives.
        pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.variants.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "empty Union");
            let mut pick = rng.next_u64() % total;
            for (w, s) in &self.variants {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (start as i128 + v) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// String-pattern strategy: `".{lo,hi}"` generates `lo..=hi`
    /// arbitrary characters; any other pattern falls back to 0..=64
    /// arbitrary characters. (No general regex support.)
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 64));
            let len = lo + rng.below(hi - lo + 1);
            (0..len).map(|_| arb_char(rng)).collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    fn arb_char(rng: &mut TestRng) -> char {
        match rng.below(8) {
            // mostly printable ASCII, sprinkled with whitespace/control
            // and non-ASCII so text-handling code gets fuzzed properly
            0..=4 => (0x20u8 + rng.below(0x5f) as u8) as char,
            5 => *['\n', '\t', '\r', '\0'].get(rng.below(4)).unwrap(),
            6 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('¿'),
            _ => char::from_u32(rng.next_u64() as u32 % 0x11_0000)
                .filter(|c| !c.is_ascii_control())
                .unwrap_or('𝔓'),
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` — arbitrary values of primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Primitive types with a canonical arbitrary-value strategy.
    pub trait ArbPrimitive: Sized {
        /// Draws an arbitrary value, biased toward edge cases.
        fn arb(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbPrimitive> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// An arbitrary value of `T`.
    pub fn any<T: ArbPrimitive>() -> Any<T> {
        Any(PhantomData)
    }

    impl ArbPrimitive for bool {
        fn arb(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl ArbPrimitive for $t {
                fn arb(rng: &mut TestRng) -> $t {
                    // 1-in-8: draw from the edge set, else uniform bits
                    if rng.below(8) == 0 {
                        let edges = [<$t>::MIN, <$t>::MAX, 0, 1, <$t>::MAX / 2];
                        edges[rng.below(edges.len())]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

/// `prop::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An element-count specification (`n`, `lo..hi`, or `lo..=hi`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::option` — optional-value strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// `prop::sample` — choosing from fixed sets.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one element of a non-empty `Vec`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty set");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// The everything-import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines property tests: `fn name(x in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let path = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::test_runner::TestRng::for_case(path, case);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::strategy::Strategy::sample(
                            &{ $strat }, &mut rng);)+
                        $body
                    }),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {path}: case {case}/{} failed \
                         (rerun deterministically; seed env PROPTEST_RNG_SEED)",
                        config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Uniform (or `weight =>` weighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property-test assertion (no shrinking — same as `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop_oneof![
                (0u8..10).prop_map(Tree::Leaf),
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in -5i64..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn recursion_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "{t:?}");
        }

        #[test]
        fn oneof_and_select(
            tag in prop_oneof![Just(0u8), Just(1u8)],
            pick in prop::sample::select(vec!["a", "b", "c"]),
            maybe in prop::option::of(any::<bool>()),
        ) {
            prop_assert!(tag <= 1);
            prop_assert!(["a", "b", "c"].contains(&pick));
            let _ = maybe;
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(any::<u8>(), n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn str_pattern_lengths(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

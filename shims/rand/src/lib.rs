//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! this local crate provides the (small) `rand` 0.8 API surface the
//! workspace actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, [`Rng::gen_bool`], and
//! [`rngs::StdRng`]. The generator is a fixed xoshiro256**-style stream
//! seeded through SplitMix64 — deterministic across platforms and
//! versions, which is exactly what the seeded workload generators need.
//! It is *not* the upstream `StdRng` stream; seeds produce different
//! (but equally well-distributed) sequences than crates.io `rand`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, `rand`-style (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 random mantissa bits → uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic for a given seed, forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0i64..1 << 30) == b.gen_range(0i64..1 << 30));
        assert!(same.count() < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! Cross-crate property tests: invariants that only hold if the ISA,
//! compiler, simulator, and predictors agree with each other.

use proptest::prelude::*;

use predbranch::core::{
    build_predictor, HarnessConfig, InsertFilter, PredictionHarness, PredictorSpec, Timing,
};
use predbranch::isa::{decode, encode};
use predbranch::sim::{Executor, TraceSink};
use predbranch::workloads::{compile_benchmark, suite, CompileOptions};

/// Branch outcomes are invariant under the predictor choice: predictors
/// observe, they don't steer (trace-driven methodology sanity).
#[test]
fn predictors_do_not_perturb_execution() {
    let bench = &suite()[1];
    let c = compile_benchmark(bench, &CompileOptions::default());
    let outcomes = |spec: &PredictorSpec| -> (u64, u64) {
        let mut harness = PredictionHarness::new(
            build_predictor(spec),
            HarnessConfig {
                timing: Timing::immediate(8),
                insert: InsertFilter::All,
            },
        );
        let summary = Executor::new(&c.predicated, bench.input(7)).run(&mut harness, 8_000_000);
        (summary.instructions, summary.taken_conditional)
    };
    let a = outcomes(&PredictorSpec::StaticNotTaken);
    let b = outcomes(&PredictorSpec::OracleGuard);
    assert_eq!(a, b);
}

/// The whole compiled suite survives binary encode/decode round-trips.
#[test]
fn compiled_suite_is_binary_encodable() {
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());
        for program in [&c.plain, &c.predicated] {
            for (pc, inst) in program.iter() {
                let word = encode(inst).unwrap_or_else(|e| panic!("{} pc {pc}: {e}", c.name));
                assert_eq!(decode(word).unwrap(), *inst, "{} pc {pc}", c.name);
            }
        }
    }
}

/// Every conditional branch's outcome equals its guard value — the ISA
/// property both techniques rest on — checked across a real benchmark's
/// full trace via the event stream.
#[test]
fn branch_outcome_equals_guard_value() {
    let bench = &suite()[0];
    let c = compile_benchmark(bench, &CompileOptions::default());
    let mut trace = TraceSink::new();
    let summary = Executor::new(&c.predicated, bench.input(3)).run(&mut trace, 8_000_000);
    assert!(summary.halted);
    let mut preds = [false; 64];
    preds[0] = true;
    let mut checked = 0u64;
    for event in trace.events() {
        match event {
            predbranch::sim::Event::PredWrite(w) => {
                preds[w.preg.index() as usize] = w.value;
            }
            predbranch::sim::Event::Branch(b) if b.conditional => {
                assert_eq!(b.taken, preds[b.guard.index() as usize], "at pc {}", b.pc);
                checked += 1;
            }
            predbranch::sim::Event::Branch(_) => {}
        }
    }
    assert!(checked > 1000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Misprediction counts are deterministic functions of (benchmark,
    /// seed, spec): two identical runs agree exactly.
    #[test]
    fn prediction_runs_are_reproducible(seed in 0u64..1000, which in 0usize..11) {
        let bench = &suite()[which];
        let c = compile_benchmark(bench, &CompileOptions::default());
        let spec = PredictorSpec::Gshare { index_bits: 10, history_bits: 10 }.with_pgu(4);
        let run = || {
            let mut harness = PredictionHarness::new(
                build_predictor(&spec),
                HarnessConfig { timing: Timing::immediate(8), insert: InsertFilter::All },
            );
            Executor::new(&c.predicated, bench.input(seed)).run(&mut harness, 8_000_000);
            harness.metrics().all.mispredictions.get()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Compiled binaries are lint-clean: every guard is defined somewhere,
/// nothing is unreachable, and execution cannot fall off the end.
#[test]
fn compiled_suite_is_lint_clean() {
    use predbranch::isa::lint_program;
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());
        for (label, program) in [("plain", &c.plain), ("pred", &c.predicated)] {
            let lints = lint_program(program);
            assert!(
                lints.is_empty(),
                "{}/{label}: {:?}\n{program}",
                c.name,
                lints
            );
        }
    }
}

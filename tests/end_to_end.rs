//! End-to-end integration: the whole pipeline from CFG to prediction
//! metrics, exercised through the facade crate exactly as a downstream
//! user would.

use predbranch::compiler::{if_convert, lower, IfConvertConfig};
use predbranch::core::{
    build_predictor, HarnessConfig, InsertFilter, PredictionHarness, PredictorSpec, Timing,
};
use predbranch::sim::{Executor, Memory, NullSink};
use predbranch::workloads::{
    compile_benchmark, suite, CompileOptions, DEFAULT_MAX_INSTRUCTIONS, EVAL_SEED,
};

fn misp_on(program: &predbranch::isa::Program, memory: Memory, spec: &PredictorSpec) -> (f64, u64) {
    let mut harness = PredictionHarness::new(
        build_predictor(spec),
        HarnessConfig {
            timing: Timing::immediate(8),
            insert: InsertFilter::All,
        },
    );
    let summary = Executor::new(program, memory).run(&mut harness, 2 * DEFAULT_MAX_INSTRUCTIONS);
    assert!(summary.halted, "program must halt");
    (
        harness.metrics().all.misp_rate().percent(),
        harness.metrics().all.branches.get(),
    )
}

#[test]
fn oracle_is_perfect_on_every_benchmark() {
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());
        let (misp, branches) = misp_on(
            &c.predicated,
            bench.input(EVAL_SEED),
            &PredictorSpec::OracleGuard,
        );
        assert!(branches > 0);
        assert_eq!(misp, 0.0, "{}: oracle must be perfect", c.name);
    }
}

#[test]
fn squash_filter_never_mispredicts_known_false_guards() {
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());
        let spec = PredictorSpec::Gshare {
            index_bits: 13,
            history_bits: 13,
        }
        .with_sfpf();
        let mut harness = PredictionHarness::new(
            build_predictor(&spec),
            HarnessConfig {
                timing: Timing::immediate(8),
                insert: InsertFilter::All,
            },
        );
        let summary = Executor::new(&c.predicated, bench.input(EVAL_SEED))
            .run(&mut harness, 2 * DEFAULT_MAX_INSTRUCTIONS);
        assert!(summary.halted);
        let m = harness.metrics();
        assert_eq!(
            m.known_false_mispredicted.get(),
            0,
            "{}: the filter's 100% guarantee was violated",
            c.name
        );
    }
}

#[test]
fn sfpf_never_hurts_and_pgu_wins_where_designed() {
    let base = PredictorSpec::Gshare {
        index_bits: 13,
        history_bits: 13,
    };
    let mut pgu_better_somewhere = false;
    for bench in suite() {
        let c = compile_benchmark(&bench, &CompileOptions::default());
        let (b, _) = misp_on(&c.predicated, bench.input(EVAL_SEED), &base);
        let (s, _) = misp_on(
            &c.predicated,
            bench.input(EVAL_SEED),
            &base.clone().with_sfpf(),
        );
        assert!(
            s <= b + 1e-9,
            "{}: SFPF worsened misprediction ({b} -> {s})",
            c.name
        );
        let (p, _) = misp_on(
            &c.predicated,
            bench.input(EVAL_SEED),
            &base.clone().with_pgu(8),
        );
        if bench.name() == "gap" {
            assert!(
                p < b / 4.0,
                "gap: PGU must crush the v%15 branch ({b} -> {p})"
            );
        }
        if p < b * 0.8 {
            pgu_better_somewhere = true;
        }
    }
    assert!(pgu_better_somewhere, "PGU must win substantially somewhere");
}

#[test]
fn hand_written_assembly_runs_through_facade() {
    let program = predbranch::isa::assemble(
        "start: cmp.eq p1, p2 = r1, 0\n (p1) add r1 = r1, 1\n (p2) halt\n br start\n halt",
    )
    .unwrap();
    let mut exec = Executor::new(&program, Memory::new());
    let summary = exec.run(&mut NullSink, 10_000);
    assert!(summary.halted);
}

#[test]
fn lower_and_ifconvert_agree_on_a_fresh_cfg() {
    use predbranch::compiler::{CfgBuilder, Cond};
    use predbranch::isa::{CmpCond, Gpr};

    let r1 = Gpr::new(1).unwrap();
    let r2 = Gpr::new(2).unwrap();
    let mut b = CfgBuilder::new();
    b.for_range(Gpr::new(30).unwrap(), 0, 50, |b| {
        b.alu(predbranch::isa::AluOp::Rem, r2, Gpr::new(30).unwrap(), 4);
        b.if_then_else(
            Cond::new(CmpCond::Eq, r2, 0),
            |b| b.addi(r1, r1, 3),
            |b| b.addi(r1, r1, 1),
        );
        b.store(r1, Gpr::ZERO, 100);
    });
    b.halt();
    let cfg = b.finish().unwrap();
    let plain = lower(&cfg).unwrap();
    let converted = if_convert(&cfg, None, &IfConvertConfig::default()).unwrap();

    let mut e1 = Executor::new(&plain, Memory::new());
    let mut e2 = Executor::new(&converted.program, Memory::new());
    e1.run(&mut NullSink, 100_000);
    e2.run(&mut NullSink, 100_000);
    assert_eq!(e1.memory().load(100), e2.memory().load(100));
    assert_eq!(e1.reg(r1), e2.reg(r1));
}

//! Smoke-tests every registered experiment at quick scale and checks the
//! study's qualitative claims hold in the regenerated artifacts.

use predbranch_bench::{all_experiments, Artifact, RunContext, Scale};

#[test]
fn all_experiments_produce_artifacts() {
    for exp in all_experiments() {
        let artifacts = (exp.run)(&RunContext::new(), &Scale::quick());
        assert!(!artifacts.is_empty(), "{}", exp.id);
        for artifact in &artifacts {
            assert!(!artifact.to_string().trim().is_empty());
        }
    }
}

#[test]
fn f3_headline_never_worsens_with_sfpf() {
    let exp = predbranch_bench::experiments::find_experiment("f3").unwrap();
    let artifacts = (exp.run)(&RunContext::new(), &Scale::quick());
    let Artifact::Table(table) = &artifacts[0] else {
        panic!("f3 must produce a table");
    };
    // columns: bench, gshare, +SFPF, +PGU, +both; compare per data row
    for row in 0..table.row_count().saturating_sub(2) {
        let parse = |col: usize| -> f64 {
            table
                .cell(row, col)
                .unwrap()
                .as_str()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        let base = parse(1);
        let sfpf = parse(2);
        assert!(
            sfpf <= base + 1e-6,
            "row {row}: SFPF worsened {base} -> {sfpf}"
        );
    }
}

#[test]
fn f2_known_false_shrinks_with_latency() {
    let exp = predbranch_bench::experiments::find_experiment("f2").unwrap();
    let artifacts = (exp.run)(&RunContext::new(), &Scale::quick());
    let Artifact::Series(series) = &artifacts[0] else {
        panic!("f2 must lead with a series");
    };
    let known_false = series.line_values(0).unwrap();
    assert!(
        known_false.first().unwrap() >= known_false.last().unwrap(),
        "known-false coverage must not grow with latency: {known_false:?}"
    );
    let unknown = series.line_values(2).unwrap();
    assert!(unknown.first().unwrap() <= unknown.last().unwrap());
}

#[test]
fn f5_bigger_tables_do_not_hurt_baseline() {
    let exp = predbranch_bench::experiments::find_experiment("f5").unwrap();
    let artifacts = (exp.run)(&RunContext::new(), &Scale::quick());
    let Artifact::Series(series) = &artifacts[0] else {
        panic!("f5 must produce a series");
    };
    let gshare = series.line_values(0).unwrap();
    assert!(
        gshare.first().unwrap() + 1e-6 >= *gshare.last().unwrap(),
        "64 KB gshare must beat 1 KB gshare: {gshare:?}"
    );
}

//! Whole-toolchain round trip over the full suite: compile (with
//! hoisting), print as assembly, reassemble, binary-encode, decode, and
//! execute — every representation must agree.

use predbranch::compiler::hoist_compares;
use predbranch::isa::{assemble, decode_program, encode_program, Program};
use predbranch::sim::{Executor, NullSink};
use predbranch::workloads::{
    compile_benchmark, suite, CompileOptions, DEFAULT_MAX_INSTRUCTIONS, EVAL_SEED,
};

fn final_memory(program: &Program, memory: predbranch::sim::Memory) -> Vec<(i64, i64)> {
    let mut exec = Executor::new(program, memory);
    let summary = exec.run(&mut NullSink, DEFAULT_MAX_INSTRUCTIONS);
    assert!(summary.halted);
    let mut mem: Vec<_> = exec.memory().iter().collect();
    mem.sort_unstable();
    mem
}

#[test]
fn assembly_text_roundtrip_preserves_execution() {
    for bench in suite() {
        let compiled = compile_benchmark(
            &bench,
            &CompileOptions {
                hoist: true,
                ..CompileOptions::default()
            },
        );
        let text = compiled.predicated.to_string();
        let reassembled = assemble(&text)
            .unwrap_or_else(|e| panic!("{}: disassembly must reassemble: {e}", compiled.name));
        assert_eq!(
            reassembled.insts(),
            compiled.predicated.insts(),
            "{}",
            compiled.name
        );
        assert_eq!(
            final_memory(&compiled.predicated, bench.input(EVAL_SEED)),
            final_memory(&reassembled, bench.input(EVAL_SEED)),
            "{}",
            compiled.name
        );
    }
}

#[test]
fn binary_roundtrip_preserves_execution() {
    for bench in suite() {
        let compiled = compile_benchmark(&bench, &CompileOptions::default());
        let words = encode_program(&compiled.predicated)
            .unwrap_or_else(|e| panic!("{}: encodes: {e}", compiled.name));
        let insts = decode_program(&words).unwrap();
        let decoded = Program::new(insts).unwrap();
        assert_eq!(
            final_memory(&compiled.predicated, bench.input(EVAL_SEED)),
            final_memory(&decoded, bench.input(EVAL_SEED)),
            "{}",
            compiled.name
        );
    }
}

#[test]
fn hoisting_preserves_suite_execution_and_lint_cleanliness() {
    for bench in suite() {
        let plain_sched = compile_benchmark(&bench, &CompileOptions::default());
        let hoisted = hoist_compares(&plain_sched.predicated);
        assert_eq!(
            final_memory(&plain_sched.predicated, bench.input(EVAL_SEED)),
            final_memory(&hoisted.program, bench.input(EVAL_SEED)),
            "{}",
            plain_sched.name
        );
        let lints = predbranch::isa::lint_program(&hoisted.program);
        assert!(lints.is_empty(), "{}: {lints:?}", plain_sched.name);
    }
}
